//! **Extension**: the matching service under concurrent client load.
//!
//! Every other study drives an engine directly; this one measures the
//! `ldgm-serve` stack end to end — TCP framing, the update coalescer, the
//! snapshot read path — with seeded in-process load generators. Two
//! complementary measurements per run:
//!
//! 1. **Coalescing records** (one per dataset, latency-comparable across
//!    PRs): N closed-loop client threads each stream single-edge updates
//!    interleaved with timed `mate` point queries. Reported: wall-clock
//!    p50/p99 query latency, the coalesced batch-size histogram (the
//!    whole point of the coalescer: mean committed batch size must
//!    exceed 1 under concurrent load), per-tenant billed simulated time,
//!    and whether the final matching survived the offline replay check.
//! 2. **Throughput trajectory** (first dataset): a single-threaded
//!    multiplexed loadgen — every connection non-blocking behind one
//!    poller, a bounded window of pipelined in-flight requests per
//!    connection — sweeps the client count over both I/O models
//!    (`blocking` thread-per-connection baseline vs the epoll `reactor`)
//!    and records rps with p50/p99/p999 completion latency. The summary
//!    pins the headline ratio: reactor rps at the largest client count
//!    over the baseline's best rps at any client count.
//!
//! `BENCH_serve.json` is a schema-version-2 document:
//! `{schema_version, records, throughput, summary}`.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write as IoWrite};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

use epoll_shim::{Event, Interest, Poller};
use ldgm_dyn::DynConfig;
use ldgm_gpusim::json::{self, Json};
use ldgm_gpusim::Platform;
use ldgm_graph::{CsrGraph, Xoshiro256};
use ldgm_serve::{
    serve, serve_opts, FrameSplitter, IoModel, MatchService, ServeConfig, ServerOptions,
    SplitFrame, MAX_FRAME_LEN,
};

use crate::datasets::{by_name, scaled_platform, Dataset};
use crate::table::Table;

/// Concurrent load-generator clients per dataset (coalescing records).
pub const CLIENTS: usize = 4;
/// Updates each client submits (coalescing records).
pub const UPDATES_PER_CLIENT: usize = 80;
/// Coalescer flush target (smaller than the 64 default so a short
/// benchmark still commits many batches).
pub const COALESCE_TARGET: usize = 16;
/// Simulated devices backing each service.
pub const DEVICES: usize = 2;
/// Load-stream seed.
pub const SEED: u64 = 11;
/// Default datasets: the three smallest Table I stand-ins, one per
/// family shape (social rmat, stencil lattice, dense similarity).
pub const DATASETS: &[&str] = &["com-Orkut", "Queen_4147", "mouse_gene"];
/// Default client-count sweep of the throughput trajectory.
pub const THROUGHPUT_CLIENTS: &[usize] = &[4, 32, 128, 512];
/// Default duration of one throughput point, milliseconds.
pub const THROUGHPUT_DURATION_MS: u64 = 2000;
/// Default pipelined in-flight requests per loadgen connection.
pub const WINDOW: usize = 16;
/// Reactor event-loop threads used by the throughput sweep (the blocking
/// baseline gets one handler thread per client, its native shape).
pub const REACTOR_THREADS: usize = 2;
/// One update is interleaved per this many loadgen requests.
const UPDATE_EVERY: usize = 64;

/// Knobs of one study run; every field has a CLI flag in `ext_serve`.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Closed-loop clients per coalescing record.
    pub clients: usize,
    /// Updates per closed-loop client.
    pub updates_per_client: usize,
    /// Duration of each throughput point, ms (0 skips the sweep).
    pub duration_ms: u64,
    /// Client counts of the throughput sweep.
    pub throughput_clients: Vec<usize>,
    /// Pipelined in-flight requests per loadgen connection.
    pub window: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            clients: CLIENTS,
            updates_per_client: UPDATES_PER_CLIENT,
            duration_ms: THROUGHPUT_DURATION_MS,
            throughput_clients: THROUGHPUT_CLIENTS.to_vec(),
            window: WINDOW,
        }
    }
}

/// One dataset's service-under-load measurement.
#[derive(Clone, Debug)]
pub struct ServeRecord {
    /// Dataset name.
    pub dataset: String,
    /// Concurrent clients.
    pub clients: usize,
    /// Coalescer flush target.
    pub coalesce_target: usize,
    /// Updates applied by the engine (== admitted across all clients).
    pub updates_applied: u64,
    /// Point queries served.
    pub queries: u64,
    /// Committed batches.
    pub flushes: u64,
    /// Batches committed by the deadline rather than the size target.
    pub deadline_flushes: u64,
    /// Mean coalesced batch size (> 1 means coalescing actually merged
    /// concurrent submissions).
    pub mean_batch: f64,
    /// Largest committed batch.
    pub max_batch: u64,
    /// Power-of-two batch-size histogram as (upper bound, count).
    pub batch_histogram: Vec<(f64, u64)>,
    /// Wall-clock median `mate` latency, microseconds.
    pub p50_query_us: f64,
    /// Wall-clock 99th-percentile `mate` latency, microseconds.
    pub p99_query_us: f64,
    /// Mate-change events delivered to the subscribing client.
    pub subscription_events: u64,
    /// Final matched weight.
    pub weight: f64,
    /// Final matched edges.
    pub cardinality: u64,
    /// Final commit epoch (== flushes).
    pub epoch: u64,
    /// Simulated seconds billed across all tenants.
    pub billed_sim_time: f64,
    /// Whether the final matching was bit-identical to an offline replay
    /// of the full update history.
    pub replay_identical: bool,
}

impl ServeRecord {
    /// Serialize for `BENCH_serve.json`.
    pub fn to_json(&self) -> Json {
        let hist: Vec<Json> = self
            .batch_histogram
            .iter()
            .map(|&(le, n)| Json::object().with("le", le).with("count", n))
            .collect();
        Json::object()
            .with("dataset", self.dataset.clone())
            .with("clients", self.clients)
            .with("coalesce_target", self.coalesce_target)
            .with("updates_applied", self.updates_applied)
            .with("queries", self.queries)
            .with("flushes", self.flushes)
            .with("deadline_flushes", self.deadline_flushes)
            .with("mean_batch", self.mean_batch)
            .with("max_batch", self.max_batch)
            .with("batch_histogram", Json::Array(hist))
            .with("p50_query_us", self.p50_query_us)
            .with("p99_query_us", self.p99_query_us)
            .with("subscription_events", self.subscription_events)
            .with("weight", self.weight)
            .with("cardinality", self.cardinality)
            .with("epoch", self.epoch)
            .with("billed_sim_time", self.billed_sim_time)
            .with("replay_identical", self.replay_identical)
    }
}

/// One (io model, client count) point of the throughput trajectory.
#[derive(Clone, Debug)]
pub struct ThroughputPoint {
    /// Dataset name.
    pub dataset: String,
    /// I/O model label (`"reactor"` / `"blocking"`).
    pub io: String,
    /// Concurrent loadgen connections.
    pub clients: usize,
    /// Server threads (event loops, or blocking handlers).
    pub threads: usize,
    /// Pipelined in-flight requests per connection.
    pub window: usize,
    /// Measurement window, ms.
    pub duration_ms: u64,
    /// Requests completed inside the measurement window.
    pub requests: u64,
    /// Updates interleaved into the request stream (rest are `mate`).
    pub updates: u64,
    /// Completed requests per second.
    pub rps: f64,
    /// Median completion latency (enqueue to response), microseconds.
    pub p50_us: f64,
    /// 99th-percentile completion latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile completion latency, microseconds.
    pub p999_us: f64,
    /// Server-side flushes that hit `WouldBlock` (reactor only).
    pub backpressure_stalls: u64,
    /// Offline replay check at shutdown.
    pub replay_identical: bool,
}

impl ThroughputPoint {
    /// Serialize for `BENCH_serve.json`.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("dataset", self.dataset.clone())
            .with("io", self.io.clone())
            .with("clients", self.clients)
            .with("threads", self.threads)
            .with("window", self.window)
            .with("duration_ms", self.duration_ms)
            .with("requests", self.requests)
            .with("updates", self.updates)
            .with("rps", self.rps)
            .with("p50_us", self.p50_us)
            .with("p99_us", self.p99_us)
            .with("p999_us", self.p999_us)
            .with("backpressure_stalls", self.backpressure_stalls)
            .with("replay_identical", self.replay_identical)
    }
}

/// Everything one study run produced.
#[derive(Clone, Debug, Default)]
pub struct Study {
    /// Per-dataset coalescing records.
    pub records: Vec<ServeRecord>,
    /// The throughput trajectory (empty when the sweep was skipped).
    pub throughput: Vec<ThroughputPoint>,
}

impl Study {
    /// The headline ratio: reactor rps at its largest measured client
    /// count over the blocking baseline's best rps at any client count.
    /// `None` until both models have at least one point.
    pub fn speedup(&self) -> Option<f64> {
        let best_baseline = self
            .throughput
            .iter()
            .filter(|p| p.io == "blocking")
            .max_by(|a, b| a.rps.total_cmp(&b.rps))?;
        let reactor_at_max =
            self.throughput.iter().filter(|p| p.io == "reactor").max_by_key(|p| p.clients)?;
        Some(reactor_at_max.rps / best_baseline.rps.max(1e-9))
    }

    /// Serialize the schema-version-2 `BENCH_serve.json` document.
    pub fn to_json(&self) -> Json {
        let mut summary = Json::object();
        if let Some(best) = self
            .throughput
            .iter()
            .filter(|p| p.io == "blocking")
            .max_by(|a, b| a.rps.total_cmp(&b.rps))
        {
            summary.set("baseline_best_rps", best.rps);
            summary.set("baseline_best_clients", best.clients);
        }
        if let Some(peak) =
            self.throughput.iter().filter(|p| p.io == "reactor").max_by_key(|p| p.clients)
        {
            summary.set("reactor_rps_at_max_clients", peak.rps);
            summary.set("reactor_max_clients", peak.clients);
        }
        if let Some(s) = self.speedup() {
            summary.set("speedup", s);
        }
        Json::object()
            .with("schema_version", 2u64)
            .with("records", Json::Array(self.records.iter().map(ServeRecord::to_json).collect()))
            .with(
                "throughput",
                Json::Array(self.throughput.iter().map(ThroughputPoint::to_json).collect()),
            )
            .with("summary", summary)
    }
}

/// Serialize a coalescing-record set as a flat JSON array (the schema-v1
/// body, still used by tests comparing individual records).
pub fn serve_records_to_json(records: &[ServeRecord]) -> Json {
    Json::Array(records.iter().map(ServeRecord::to_json).collect())
}

/// One line-delimited JSON client; responses are read past any
/// interleaved subscription events, which are counted separately.
struct LoadClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    events: u64,
}

impl LoadClient {
    fn connect(addr: &str) -> LoadClient {
        let stream = TcpStream::connect(addr).expect("connect to in-process server");
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        LoadClient { stream, reader, events: 0 }
    }

    /// Send one request line and return its (non-event) response.
    fn call(&mut self, req: &Json) -> Json {
        writeln!(self.stream, "{}", req.to_string_compact()).expect("request write");
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("response read");
            let msg = json::parse(&line).expect("server speaks JSON");
            if msg.get("event").is_some() {
                self.events += 1;
                continue;
            }
            return msg;
        }
    }
}

/// One client's session: `updates` seeded single-edge updates, with a
/// timed `mate` query after every second update. Returns the query
/// latencies (µs) and the subscription events this client observed.
fn client_session(addr: &str, id: usize, updates: usize, seed: u64) -> (Vec<f64>, u64) {
    let mut c = LoadClient::connect(addr);
    let hello = c.call(&Json::object().with("op", "hello").with("tenant", format!("loadgen-{id}")));
    assert_eq!(hello.get("ok").and_then(Json::as_bool), Some(true), "hello failed");
    let info = c.call(&Json::object().with("op", "match-info"));
    let n =
        info.get("num_vertices").and_then(Json::as_f64).expect("match-info num_vertices") as u64;
    // The first client also subscribes, so notification delivery runs
    // under the same load it is being measured with.
    if id == 0 {
        let sub = c.call(&Json::object().with("op", "subscribe").with("v", 0u32));
        assert_eq!(sub.get("ok").and_then(Json::as_bool), Some(true), "subscribe failed");
    }

    let mut rng = Xoshiro256::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9e37_79b9));
    let mut latencies = Vec::with_capacity(updates / 2 + 1);
    for i in 0..updates {
        let u = rng.below(n) as u32;
        let v = rng.below(n) as u32;
        if u == v {
            continue;
        }
        let upd = if rng.chance(0.3) {
            Json::object().with("op", "update").with("kind", "delete").with("u", u).with("v", v)
        } else {
            Json::object()
                .with("op", "update")
                .with("kind", "insert")
                .with("u", u)
                .with("v", v)
                .with("w", 0.05 + rng.next_f64())
        };
        let ack = c.call(&upd);
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "update rejected: {ack:?}");

        if i % 2 == 1 {
            let q = rng.below(n) as u32;
            let t0 = Instant::now();
            let resp = c.call(&Json::object().with("op", "mate").with("v", q));
            latencies.push(t0.elapsed().as_secs_f64() * 1e6);
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "query failed");
        }
    }
    (latencies, c.events)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn service_for(name: &str, g: CsrGraph, coalesce_target: usize) -> Arc<MatchService> {
    let dyn_cfg = DynConfig::builder(scaled_platform(Platform::dgx_a100()))
        .devices(DEVICES)
        .build()
        .expect("device count is positive");
    let cfg = ServeConfig {
        coalesce_target,
        deadline: Duration::from_millis(25),
        max_pending_per_tenant: 1_000_000,
    };
    Arc::new(MatchService::new(name, g, dyn_cfg, cfg))
}

/// Serve `g` on a loopback server, drive it with `clients` concurrent
/// seeded sessions, and collect the record.
pub fn measure(name: &str, g: CsrGraph, clients: usize, updates_per_client: usize) -> ServeRecord {
    let service = service_for(name, g, COALESCE_TARGET);
    let handle = serve(vec![service], "127.0.0.1:0", 2).expect("bind loopback");
    let addr = handle.addr.to_string();

    let sessions: Vec<_> = (0..clients)
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || client_session(&addr, id, updates_per_client, SEED))
        })
        .collect();
    let mut latencies = Vec::new();
    let mut events = 0u64;
    for s in sessions {
        let (lat, ev) = s.join().expect("client session");
        latencies.extend(lat);
        events += ev;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));

    // Control session: commit stragglers, read the final state, then shut
    // the server down (which runs the offline replay check).
    let mut ctl = LoadClient::connect(&addr);
    ctl.call(&Json::object().with("op", "flush"));
    let stats = ctl.call(&Json::object().with("op", "stats"));
    let info = ctl.call(&Json::object().with("op", "match-info"));
    let bye = ctl.call(&Json::object().with("op", "shutdown"));
    handle.join();

    let f = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let hist = stats
        .get("batch_histogram")
        .and_then(Json::as_array)
        .map(|rows| rows.iter().map(|r| (f(r, "le"), f(r, "count") as u64)).collect::<Vec<_>>())
        .unwrap_or_default();
    let sum_tenants = |k: &str| match stats.get("tenants") {
        Some(Json::Object(entries)) => entries.iter().map(|(_, t)| f(t, k)).sum::<f64>(),
        _ => 0.0,
    };
    ServeRecord {
        dataset: name.to_string(),
        clients,
        coalesce_target: COALESCE_TARGET,
        updates_applied: f(&stats, "updates_applied") as u64,
        queries: sum_tenants("queries") as u64,
        flushes: f(&stats, "flushes") as u64,
        deadline_flushes: f(&stats, "deadline_flushes") as u64,
        mean_batch: f(&stats, "mean_batch"),
        max_batch: f(&stats, "max_batch") as u64,
        batch_histogram: hist,
        p50_query_us: percentile(&latencies, 0.50),
        p99_query_us: percentile(&latencies, 0.99),
        subscription_events: events,
        weight: f(&info, "weight"),
        cardinality: f(&info, "size") as u64,
        epoch: f(&info, "epoch") as u64,
        billed_sim_time: sum_tenants("billed_sim_time"),
        replay_identical: bye.get("replay_identical").and_then(Json::as_bool).unwrap_or(false),
    }
}

/// One multiplexed loadgen connection: non-blocking socket, reusable
/// frame splitter and send buffer, a bounded window of in-flight
/// requests stamped with their enqueue times.
struct PipeConn {
    stream: TcpStream,
    splitter: FrameSplitter,
    wbuf: Vec<u8>,
    wpos: usize,
    inflight: VecDeque<Instant>,
    write_armed: bool,
    sent: u64,
}

impl PipeConn {
    fn unsent(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Enqueue one request: mostly compact `mate` frames (the server's
    /// zero-allocation fast path), one insert per [`UPDATE_EVERY`].
    fn enqueue(&mut self, n: u64, rng: &mut Xoshiro256, updates_sent: &mut u64) {
        if self.sent % UPDATE_EVERY as u64 == UPDATE_EVERY as u64 - 1 {
            let u = rng.below(n) as u32;
            let v = (u + 1 + rng.below(n - 1) as u32) % n as u32;
            let w = 0.05 + rng.next_f64();
            self.wbuf.extend_from_slice(
                format!(
                    "{{\"op\":\"update\",\"kind\":\"insert\",\"u\":{u},\"v\":{v},\"w\":{w}}}\n"
                )
                .as_bytes(),
            );
            *updates_sent += 1;
        } else {
            let q = rng.below(n);
            self.wbuf.extend_from_slice(b"{\"op\":\"mate\",\"v\":");
            self.wbuf.extend_from_slice(q.to_string().as_bytes());
            self.wbuf.extend_from_slice(b"}\n");
        }
        self.sent += 1;
        self.inflight.push_back(Instant::now());
    }

    /// Write as much of the send buffer as the socket takes; returns
    /// whether the socket would block (write interest should be armed).
    fn flush(&mut self) -> bool {
        while self.unsent() > 0 {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => panic!("loadgen socket closed mid-benchmark"),
                Ok(k) => self.wpos += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("loadgen write failed: {e}"),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        false
    }
}

/// Serve `g` with the chosen I/O model and drive it with a multiplexed
/// windowed-pipelining loadgen for `duration_ms`; returns the point.
pub fn measure_throughput(
    name: &str,
    g: CsrGraph,
    io_model: IoModel,
    clients: usize,
    duration_ms: u64,
    window: usize,
) -> ThroughputPoint {
    assert!(clients > 0 && window > 0 && duration_ms > 0);
    let service = service_for(name, g, 64);
    let n = service.snapshot().mate.len() as u64;
    assert!(n > 2, "throughput graph too small");
    let threads = match io_model {
        // A couple of event loops carry every connection…
        IoModel::Reactor => REACTOR_THREADS,
        // …the baseline gets its native shape: a thread per connection.
        IoModel::Blocking => clients,
    };
    let handle = serve_opts(
        vec![service],
        "127.0.0.1:0",
        ServerOptions { io: io_model, threads, max_frame: MAX_FRAME_LEN },
    )
    .expect("bind loopback");
    let addr = handle.addr;

    let poller = Poller::new().expect("loadgen poller");
    let mut conns: Vec<PipeConn> = (0..clients)
        .map(|i| {
            let stream = TcpStream::connect(addr).expect("loadgen connect");
            stream.set_nodelay(true).expect("nodelay");
            stream.set_nonblocking(true).expect("nonblocking");
            poller.add(stream.as_raw_fd(), i as u64, Interest::READ).expect("register");
            PipeConn {
                stream,
                splitter: FrameSplitter::new(MAX_FRAME_LEN),
                wbuf: Vec::new(),
                wpos: 0,
                inflight: VecDeque::new(),
                write_armed: false,
                sent: 0,
            }
        })
        .collect();

    let mut rng = Xoshiro256::seed_from_u64(SEED ^ (clients as u64) << 8 ^ threads as u64);
    let mut latencies: Vec<f64> = Vec::new();
    let mut completed_in_window = 0u64;
    let mut updates_sent = 0u64;
    let mut bad_frames = 0u64;
    let mut scratch = vec![0u8; 64 * 1024];

    let t0 = Instant::now();
    let t_end = t0 + Duration::from_millis(duration_ms);
    let t_grace = t_end + Duration::from_secs(10);

    // Prime every window, then let readiness drive the rest.
    for (i, c) in conns.iter_mut().enumerate() {
        for _ in 0..window {
            c.enqueue(n, &mut rng, &mut updates_sent);
        }
        if c.flush() && !c.write_armed {
            c.write_armed = true;
            let _ = poller.modify(c.stream.as_raw_fd(), i as u64, Interest::READ_WRITE);
        }
    }

    let mut events: Vec<Event> = Vec::new();
    loop {
        let now = Instant::now();
        let sending = now < t_end;
        if !sending
            && (conns.iter().all(|c| c.inflight.is_empty() && c.unsent() == 0) || now > t_grace)
        {
            break;
        }
        events.clear();
        poller.wait(&mut events, 100).expect("loadgen wait");
        for ev in &events {
            let i = ev.token as usize;
            let c = &mut conns[i];
            if ev.readable {
                loop {
                    match c.stream.read(&mut scratch) {
                        Ok(0) => panic!("server hung up mid-benchmark"),
                        Ok(k) => {
                            c.splitter.push(&scratch[..k]);
                            if k < scratch.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => panic!("loadgen read failed: {e}"),
                    }
                }
                let now = Instant::now();
                let counting = now < t_end;
                while let Some(frame) = c.splitter.next() {
                    let SplitFrame::Line(r) = frame else { panic!("oversized response frame") };
                    if !c.splitter.slice(r).starts_with(b"{\"ok\":true") {
                        bad_frames += 1;
                    }
                    let sent_at =
                        c.inflight.pop_front().expect("response without an in-flight request");
                    if counting {
                        completed_in_window += 1;
                        latencies.push(now.duration_since(sent_at).as_secs_f64() * 1e6);
                    }
                }
                if sending {
                    while c.inflight.len() < window {
                        c.enqueue(n, &mut rng, &mut updates_sent);
                    }
                }
            }
            let blocked = c.flush();
            if blocked != c.write_armed {
                c.write_armed = blocked;
                let want = if blocked { Interest::READ_WRITE } else { Interest::READ };
                let _ = poller.modify(c.stream.as_raw_fd(), i as u64, want);
            }
        }
    }
    assert_eq!(bad_frames, 0, "loadgen saw {bad_frames} non-ok responses");
    drop(conns); // close every loadgen socket before the control session

    let mut ctl = LoadClient::connect(&addr.to_string());
    let stats = ctl.call(&Json::object().with("op", "stats"));
    let stalls = stats
        .get("server")
        .and_then(|s| s.get("backpressure_stalls"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64;
    let bye = ctl.call(&Json::object().with("op", "shutdown"));
    handle.join();

    latencies.sort_by(|a, b| a.total_cmp(b));
    ThroughputPoint {
        dataset: name.to_string(),
        io: io_model.label().to_string(),
        clients,
        threads,
        window,
        duration_ms,
        requests: completed_in_window,
        updates: updates_sent,
        rps: completed_in_window as f64 / (duration_ms as f64 / 1e3),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        backpressure_stalls: stalls,
        replay_identical: bye.get("replay_identical").and_then(Json::as_bool).unwrap_or(false),
    }
}

/// Run the study over `datasets` with `cfg`, returning every record.
pub fn run_on_with(
    datasets: &[Dataset],
    cfg: &StudyConfig,
    w: &mut dyn IoWrite,
) -> io::Result<Study> {
    writeln!(w, "# Extension: matching-as-a-service under concurrent load\n")?;
    writeln!(
        w,
        "{} loadgen clients per dataset, {} updates each with\n\
         interleaved timed point queries, coalesce target {COALESCE_TARGET}, {DEVICES}\n\
         simulated devices. `replay` checks the served matching against an\n\
         offline replay of the full update history (canonical uniqueness).\n",
        cfg.clients, cfg.updates_per_client
    )?;
    let mut t = Table::new(vec![
        "dataset",
        "clients",
        "updates",
        "flushes",
        "mean batch",
        "p50 query",
        "p99 query",
        "replay",
    ]);
    let mut study = Study::default();
    for ds in datasets {
        let rec = measure(ds.name, ds.build(), cfg.clients, cfg.updates_per_client);
        t.row(vec![
            rec.dataset.clone(),
            format!("{}", rec.clients),
            format!("{}", rec.updates_applied),
            format!("{} ({} deadline)", rec.flushes, rec.deadline_flushes),
            format!("{:.1}", rec.mean_batch),
            format!("{:.0} us", rec.p50_query_us),
            format!("{:.0} us", rec.p99_query_us),
            if rec.replay_identical { "identical" } else { "DIVERGED" }.to_string(),
        ]);
        study.records.push(rec);
    }
    writeln!(w, "{t}")?;

    let Some(first) = datasets.first() else { return Ok(study) };
    if cfg.duration_ms == 0 || cfg.throughput_clients.is_empty() {
        return Ok(study);
    }
    writeln!(w, "## Throughput trajectory ({}): blocking baseline vs epoll reactor\n", first.name)?;
    writeln!(
        w,
        "Multiplexed loadgen, window {} pipelined requests per connection,\n\
         {} ms per point; 1 update per {UPDATE_EVERY} requests, rest are fast-path\n\
         `mate` queries.\n",
        cfg.window, cfg.duration_ms
    )?;
    let mut tt = Table::new(vec![
        "io", "clients", "threads", "rps", "p50", "p99", "p99.9", "stalls", "replay",
    ]);
    for &io_model in &[IoModel::Blocking, IoModel::Reactor] {
        for &clients in &cfg.throughput_clients {
            let p = measure_throughput(
                first.name,
                first.build(),
                io_model,
                clients,
                cfg.duration_ms,
                cfg.window,
            );
            tt.row(vec![
                p.io.clone(),
                format!("{}", p.clients),
                format!("{}", p.threads),
                format!("{:.0}", p.rps),
                format!("{:.0} us", p.p50_us),
                format!("{:.0} us", p.p99_us),
                format!("{:.0} us", p.p999_us),
                format!("{}", p.backpressure_stalls),
                if p.replay_identical { "identical" } else { "DIVERGED" }.to_string(),
            ]);
            study.throughput.push(p);
        }
    }
    writeln!(w, "{tt}")?;
    if let Some(s) = study.speedup() {
        writeln!(w, "reactor @ max clients vs best blocking baseline: {s:.1}x\n")?;
    }
    Ok(study)
}

/// Run the study over `datasets` with the default knobs.
pub fn run_on(datasets: &[Dataset], w: &mut dyn IoWrite) -> io::Result<Study> {
    run_on_with(datasets, &StudyConfig::default(), w)
}

/// Run the study on the default dataset subset, writing the report to `w`.
pub fn run(w: &mut dyn IoWrite) -> io::Result<()> {
    let datasets: Vec<Dataset> =
        DATASETS.iter().map(|n| by_name(n).expect("registry dataset")).collect();
    run_on(&datasets, w).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::gen::urand;

    #[test]
    fn concurrent_load_coalesces_and_replays_identically() {
        let rec = measure("test-urand", urand(400, 1600, 3), 3, 30);
        // The acceptance criterion: concurrent submissions actually merge.
        assert!(rec.mean_batch > 1.0, "mean batch {}", rec.mean_batch);
        assert!(rec.flushes > 1, "{} flushes", rec.flushes);
        assert_eq!(rec.epoch, rec.flushes);
        assert!(rec.replay_identical, "served matching diverged from offline replay");
        assert!(rec.queries > 0 && rec.updates_applied > 0);
        assert!(rec.p99_query_us >= rec.p50_query_us);
        assert!(rec.billed_sim_time > 0.0);
        let total_in_hist: u64 = rec.batch_histogram.iter().map(|&(_, n)| n).sum();
        assert_eq!(total_in_hist, rec.flushes, "histogram covers every flush");
    }

    #[test]
    fn throughput_point_measures_both_io_models() {
        for io_model in [IoModel::Reactor, IoModel::Blocking] {
            let p = measure_throughput("test-urand", urand(300, 1200, 3), io_model, 8, 250, 8);
            assert_eq!(p.io, io_model.label());
            assert!(p.requests > 0, "{io_model:?}: no completions");
            assert!(p.rps > 0.0, "{io_model:?}");
            assert!(p.p99_us >= p.p50_us && p.p999_us >= p.p99_us, "{io_model:?}");
            assert!(p.replay_identical, "{io_model:?}: replay diverged");
            assert!(p.updates > 0, "{io_model:?}: stream had no updates");
        }
    }

    #[test]
    fn study_document_has_schema_v2_shape() {
        let point = |io: &str, clients: usize, rps: f64| ThroughputPoint {
            dataset: "x".into(),
            io: io.into(),
            clients,
            threads: 2,
            window: 16,
            duration_ms: 100,
            requests: (rps / 10.0) as u64,
            updates: 3,
            rps,
            p50_us: 50.0,
            p99_us: 200.0,
            p999_us: 400.0,
            backpressure_stalls: 1,
            replay_identical: true,
        };
        let study = Study {
            records: Vec::new(),
            throughput: vec![
                point("blocking", 4, 2000.0),
                point("blocking", 32, 1500.0),
                point("reactor", 4, 3000.0),
                point("reactor", 32, 12000.0),
            ],
        };
        // Speedup = reactor at its largest client count (32 → 12000) over
        // the baseline's best anywhere (4 → 2000).
        assert!((study.speedup().unwrap() - 6.0).abs() < 1e-9);
        let doc = study.to_json();
        assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("throughput").and_then(Json::as_array).unwrap().len(), 4);
        let summary = doc.get("summary").unwrap();
        assert_eq!(summary.get("baseline_best_rps").and_then(Json::as_f64), Some(2000.0));
        assert_eq!(summary.get("baseline_best_clients").and_then(Json::as_f64), Some(4.0));
        assert_eq!(summary.get("reactor_rps_at_max_clients").and_then(Json::as_f64), Some(12000.0));
        assert_eq!(summary.get("speedup").and_then(Json::as_f64), Some(6.0));
        // Round-trip through the parser (what the CI gate does).
        let parsed = json::parse(&doc.to_string_pretty()).unwrap();
        let rows = parsed.get("throughput").and_then(Json::as_array).unwrap();
        assert!(rows.iter().all(|r| {
            r.get("rps").and_then(Json::as_f64).unwrap() > 0.0
                && r.get("p99_us").and_then(Json::as_f64).is_some()
        }));
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = ServeRecord {
            dataset: "x".into(),
            clients: 4,
            coalesce_target: 16,
            updates_applied: 320,
            queries: 160,
            flushes: 20,
            deadline_flushes: 2,
            mean_batch: 16.0,
            max_batch: 16,
            batch_histogram: vec![(16.0, 18), (32.0, 2)],
            p50_query_us: 120.0,
            p99_query_us: 900.0,
            subscription_events: 3,
            weight: 12.5,
            cardinality: 180,
            epoch: 20,
            billed_sim_time: 0.25,
            replay_identical: true,
        };
        let doc = serve_records_to_json(std::slice::from_ref(&rec)).to_string_pretty();
        let parsed = json::parse(&doc).unwrap();
        let row = &parsed.as_array().unwrap()[0];
        assert_eq!(row.get("dataset").and_then(Json::as_str), Some("x"));
        assert_eq!(row.get("mean_batch").and_then(Json::as_f64), Some(rec.mean_batch));
        assert_eq!(row.get("replay_identical").and_then(Json::as_bool), Some(true));
        let hist = row.get("batch_histogram").and_then(Json::as_array).unwrap();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[1].get("count").and_then(Json::as_f64), Some(2.0));
    }
}

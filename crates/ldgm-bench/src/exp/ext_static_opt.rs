//! **Extension**: frontier-guided static LD-GPU (`ld-gpu-opt`) vs the
//! paper-faithful default.
//!
//! The optimized mode keeps the default's bit-identical matching while
//! changing only what is billed: a preference-sorted adjacency index lets
//! SETPOINTERS early-exit at the first available neighbor, a
//! cross-iteration frontier restricts every post-first launch to the
//! vertices whose pointer target was matched away, and sparse delta
//! collectives shrink the dense `8·|V|` allreduces to ~16 B per changed
//! entry. This study sweeps all fourteen Table-I stand-ins across device
//! and batch settings and reports the simulated-time ratio plus the edge
//! scan and wire-byte reductions that produce it.

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig, LdGpuOutput};
use ldgm_gpusim::json::Json;
use ldgm_gpusim::Platform;

use crate::datasets::{registry, scaled_platform, Dataset};
use crate::runner::fmt_secs;
use crate::table::Table;

/// Devices swept.
pub const DEVICE_SWEEP: &[usize] = &[1, 4];
/// Batch settings swept: the paper's auto policy and a fixed 4-batch plan.
pub const BATCH_SWEEP: &[Option<usize>] = &[None, Some(4)];

/// One default-vs-optimized comparison.
#[derive(Clone, Debug)]
pub struct OptRecord {
    /// Dataset name (Table I stand-in identifier).
    pub dataset: String,
    /// Devices used.
    pub devices: usize,
    /// Batches per device actually run (auto settings resolved).
    pub batches: usize,
    /// Whether the batch count was chosen by the auto policy.
    pub auto_batches: bool,
    /// Simulated seconds, default `ld-gpu`.
    pub time_default: f64,
    /// Simulated seconds, `ld-gpu-opt`.
    pub time_opt: f64,
    /// Adjacency slots scanned by the default.
    pub edges_scanned_default: u64,
    /// Adjacency slots scanned by the optimized mode.
    pub edges_scanned_opt: u64,
    /// Collective wire bytes, default.
    pub collective_bytes_default: u64,
    /// Collective wire bytes, optimized.
    pub collective_bytes_opt: u64,
    /// Matching weight (identical across modes by construction).
    pub weight: f64,
    /// Matched edges (identical across modes by construction).
    pub cardinality: u64,
    /// Whether the two mate arrays were bit-identical.
    pub identical: bool,
}

impl OptRecord {
    /// Simulated-time ratio default / optimized.
    pub fn speedup(&self) -> f64 {
        self.time_default / self.time_opt
    }

    /// Serialize for `BENCH_static_opt.json`.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("dataset", self.dataset.clone())
            .with("devices", self.devices)
            .with("batches", self.batches)
            .with("auto_batches", self.auto_batches)
            .with("time_default", self.time_default)
            .with("time_opt", self.time_opt)
            .with("speedup", self.speedup())
            .with("edges_scanned_default", self.edges_scanned_default)
            .with("edges_scanned_opt", self.edges_scanned_opt)
            .with("collective_bytes_default", self.collective_bytes_default)
            .with("collective_bytes_opt", self.collective_bytes_opt)
            .with("weight", self.weight)
            .with("cardinality", self.cardinality)
            .with("identical", self.identical)
    }
}

/// Serialize a result set as a JSON array document.
pub fn opt_records_to_json(records: &[OptRecord]) -> Json {
    Json::Array(records.iter().map(OptRecord::to_json).collect())
}

fn run_mode(g: &ldgm_graph::CsrGraph, cfg: LdGpuConfig) -> Result<LdGpuOutput, String> {
    LdGpu::new(cfg).try_run(g).map_err(|e| e.to_string())
}

/// Run the study over `datasets`, returning one record per feasible
/// (dataset, devices, batches) combination.
pub fn run_on(datasets: &[Dataset], w: &mut dyn Write) -> io::Result<Vec<OptRecord>> {
    writeln!(w, "# Extension: frontier-guided static LD-GPU (ld-gpu-opt)\n")?;
    writeln!(
        w,
        "Default `ld-gpu` vs `ld-gpu-opt` (sorted index + cross-iteration\n\
         frontier + sparse delta collectives) on the scaled A100 platform.\n\
         Both modes produce bit-identical matchings; only billed work\n\
         differs. Combinations that do not fit device memory are skipped.\n"
    )?;
    let platform = scaled_platform(Platform::dgx_a100());
    let mut t = Table::new(vec![
        "dataset",
        "dev",
        "batch",
        "default",
        "opt",
        "speedup",
        "scan ratio",
        "wire ratio",
    ]);
    let mut records = Vec::new();
    for ds in datasets {
        let g = ds.build();
        for &devices in DEVICE_SWEEP {
            for &batches in BATCH_SWEEP {
                let mut b = LdGpuConfig::builder(platform.clone()).devices(devices);
                if let Some(n) = batches {
                    b = b.batches(n);
                }
                let cfg = b.build().expect("sweep points are positive");
                let def = match run_mode(&g, cfg.clone()) {
                    Ok(out) => out,
                    Err(e) => {
                        writeln!(w, "skip {} d{devices} {batches:?}: {e}", ds.name)?;
                        continue;
                    }
                };
                let opt = run_mode(&g, cfg.optimized()).expect("same memory plan as default");
                let identical = opt.matching.mate_array() == def.matching.mate_array();
                let rec = OptRecord {
                    dataset: ds.name.to_string(),
                    devices,
                    batches: def.batches,
                    auto_batches: batches.is_none(),
                    time_default: def.sim_time,
                    time_opt: opt.sim_time,
                    edges_scanned_default: def.metrics.counter("kernel.edges_scanned"),
                    edges_scanned_opt: opt.metrics.counter("kernel.edges_scanned"),
                    collective_bytes_default: def.metrics.counter("comm.collective_bytes"),
                    collective_bytes_opt: opt.metrics.counter("comm.collective_bytes"),
                    weight: def.matching.weight(&g),
                    cardinality: def.matching.cardinality() as u64,
                    identical,
                };
                let ratio = |a: u64, b: u64| {
                    if a == 0 {
                        "-".to_string()
                    } else {
                        format!("{:.2}x", a as f64 / b.max(1) as f64)
                    }
                };
                t.row(vec![
                    ds.name.to_string(),
                    format!("{devices}"),
                    format!("{}{}", def.batches, if batches.is_none() { "*" } else { "" }),
                    fmt_secs(rec.time_default),
                    fmt_secs(rec.time_opt),
                    format!("{:.2}x", rec.speedup()),
                    ratio(rec.edges_scanned_default, rec.edges_scanned_opt),
                    ratio(rec.collective_bytes_default, rec.collective_bytes_opt),
                ]);
                records.push(rec);
            }
        }
    }
    writeln!(w, "{t}")?;
    writeln!(w, "(* = auto batch policy; scan/wire ratios are default / optimized)")?;
    Ok(records)
}

/// Run the full 14-dataset study.
pub fn run_records(w: &mut dyn Write) -> io::Result<Vec<OptRecord>> {
    run_on(&registry(), w)
}

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    run_records(w).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::by_name;

    #[test]
    fn small_dataset_subset_meets_acceptance_shape() {
        let subset = [by_name("mouse_gene").unwrap(), by_name("Queen_4147").unwrap()];
        let mut sink = Vec::new();
        let records = run_on(&subset, &mut sink).unwrap();
        assert!(!records.is_empty());
        for r in &records {
            assert!(r.identical, "{}: matchings must be bit-identical", r.dataset);
            assert!(r.time_opt > 0.0 && r.time_default > 0.0);
            assert!(
                r.speedup() > 1.0,
                "{} d{} b{}: opt must not be slower ({:.3}x)",
                r.dataset,
                r.devices,
                r.batches,
                r.speedup()
            );
            assert!(r.edges_scanned_opt <= r.edges_scanned_default);
            assert!(r.collective_bytes_opt <= r.collective_bytes_default);
        }
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("ld-gpu-opt"));
    }

    #[test]
    fn json_round_trips() {
        let subset = [by_name("mouse_gene").unwrap()];
        let mut sink = Vec::new();
        let records = run_on(&subset, &mut sink).unwrap();
        let doc = opt_records_to_json(&records).to_string_pretty();
        let parsed = ldgm_gpusim::json::parse(&doc).unwrap();
        let rows = parsed.as_array().unwrap();
        assert_eq!(rows.len(), records.len());
        assert_eq!(rows[0].get("dataset").and_then(Json::as_str), Some("mouse_gene"));
        assert_eq!(rows[0].get("speedup").and_then(Json::as_f64), Some(records[0].speedup()));
    }
}

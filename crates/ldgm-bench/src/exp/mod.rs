//! One module per paper experiment. Every module exposes
//! `run(w: &mut dyn Write) -> io::Result<()>` printing the regenerated
//! table/figure; the `table1`..`fig11` binaries are thin wrappers and
//! `repro_all` writes the full set under `target/repro/`.

pub mod ext_distributed;
pub mod ext_dynamic;
pub mod ext_generations;
pub mod ext_host;
pub mod ext_oocore;
pub mod ext_scaling;
pub mod ext_serve;
pub mod ext_static_opt;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

use std::io::{self, Write};

/// An experiment entry point: writes its report to the given sink.
pub type ExpRunner = fn(&mut dyn Write) -> io::Result<()>;

/// All experiments as (id, runner) pairs, in paper order.
pub fn all() -> Vec<(&'static str, ExpRunner)> {
    vec![
        ("table1", table1::run as ExpRunner),
        ("table2", table2::run),
        ("table3", table3::run),
        ("table4", table4::run),
        ("table5", table5::run),
        ("table6", table6::run),
        ("fig4", fig4::run),
        ("fig5", fig5::run),
        ("fig6", fig6::run),
        ("fig7", fig7::run),
        ("fig8", fig8::run),
        ("fig9", fig9::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("ext_distributed", ext_distributed::run),
        ("ext_dynamic", ext_dynamic::run),
        ("ext_generations", ext_generations::run),
        ("ext_host", ext_host::run),
        ("ext_oocore", ext_oocore::run),
        ("ext_scaling", ext_scaling::run),
        ("ext_serve", ext_serve::run),
        ("ext_static_opt", ext_static_opt::run),
    ]
}

//! **Table V**: multi-GPU cuGraph-style baseline vs LD-GPU on 4 GPUs,
//! single batch.
//!
//! Expected shape (paper): LD-GPU an order of magnitude faster, which the
//! paper attributes to the communication abstraction — NCCL over CUDA
//! streams vs cuGraph's MPI-based RAFT comms — plus cuGraph's generic
//! process-per-GPU execution model.

use std::io::{self, Write};

use ldgm_core::cugraph_sim::cugraph_sim;
use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_gpusim::Platform;

use crate::datasets::{by_name, scaled_platform};
use crate::runner::fmt_secs;
use crate::table::Table;

/// The five graphs of the paper's Table V.
pub const GRAPHS: &[&str] = &["Queen_4147", "mycielskian18", "com-Orkut", "kmer_U1a", "kmer_V2a"];

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Table V: cuGraph-style baseline vs LD-GPU on 4 GPUs (s)\n")?;
    let platform = scaled_platform(Platform::dgx_a100());
    let mut t = Table::new(vec!["Graph", "LD-GPU", "cuGraph-sim", "LD-GPU speedup"]);
    for name in GRAPHS {
        let g = by_name(name).expect("registry dataset").build();
        let ld = LdGpu::new(
            LdGpuConfig::new(platform.clone()).devices(4).batches(1).without_iteration_profile(),
        )
        .run(&g)
        .sim_time;
        let cu = cugraph_sim(&g, &platform, 4).expect("cuGraph-sim feasible on SMALL").sim_time;
        t.row(vec![name.to_string(), fmt_secs(ld), fmt_secs(cu), format!("{:.1}x", cu / ld)]);
    }
    writeln!(w, "{t}")
}

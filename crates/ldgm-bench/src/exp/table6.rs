//! **Table VI**: the paper's Figure of Merit — Mega-Matching-Edges per
//! Second (MMEPS) — for LD-GPU (best over configurations) vs SR-OMP.
//!
//! Expected shape (paper): LD-GPU 2–20× higher MMEPS, the sparse kmer
//! family reaching the largest absolute rates.

use std::io::{self, Write};

use ldgm_core::fom::mmeps;
use ldgm_core::suitor_par::suitor_par;
use ldgm_gpusim::Platform;

use crate::datasets::{by_name, scaled_platform};
use crate::runner::{best_wall_of, sweep_ld_gpu, BATCH_SWEEP, DEVICE_SWEEP};
use crate::table::Table;

/// The six graphs of the paper's Table VI.
pub const GRAPHS: &[&str] =
    &["AGATHA-2015", "MOLIERE_2016", "GAP-urand", "GAP-kron", "com-Friendster", "kmer_U1a"];

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Table VI: Mega-Matching-Edges per Second (higher is better)\n")?;
    let platform = scaled_platform(Platform::dgx_a100());
    let mut t = Table::new(vec!["Graph", "LD-GPU", "SR-OMP", "ratio"]);
    for name in GRAPHS {
        let g = by_name(name).expect("registry dataset").build();
        let best = sweep_ld_gpu(&g, &platform, DEVICE_SWEEP, BATCH_SWEEP).unwrap();
        let ld_fom = mmeps(best.output.matching.cardinality(), best.output.sim_time);
        let (omp_time, omp) = best_wall_of(3, || suitor_par(&g));
        let omp_fom = mmeps(omp.cardinality(), omp_time);
        t.row(vec![
            name.to_string(),
            format!("{ld_fom:.2}"),
            format!("{omp_fom:.2}"),
            format!("{:.1}x", ld_fom / omp_fom),
        ]);
    }
    writeln!(w, "{t}")
}

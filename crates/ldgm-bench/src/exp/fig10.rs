//! **Fig. 10**: LD-GPU scalability on the two dense-GPU systems — DGX-A100
//! (8× A100, NVLink SXM4) vs DGX-2 (16× V100, NVLink SXM3) — for GAP-kron
//! and com-Friendster, with the chosen batch count annotated.
//!
//! Expected shape (paper): 8 A100s beat even 16 V100s by ~8× (GAP-kron) to
//! ~10× (com-Friendster); V100 times inflate with iteration count.

use std::io::{self, Write};

use ldgm_gpusim::Platform;

use crate::datasets::{by_name, scaled_platform};
use crate::runner::{fmt_secs, sweep_ld_gpu, BATCH_SWEEP};
use crate::table::Table;

/// The two graphs of the paper's Fig. 10.
pub const GRAPHS: &[&str] = &["GAP-kron", "com-Friendster"];

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Fig. 10: DGX-A100 (8xA100) vs DGX-2 (16xV100), annotated #batches\n")?;
    let a100 = scaled_platform(Platform::dgx_a100());
    let dgx2 = scaled_platform(Platform::dgx2());
    let mut t = Table::new(vec!["Graph", "platform", "GPUs", "best (s) [batches]"]);
    for name in GRAPHS {
        let g = by_name(name).expect("registry dataset").build();
        for nd in [1usize, 2, 4, 8] {
            if let Some(best) = sweep_ld_gpu(&g, &a100, &[nd], BATCH_SWEEP) {
                t.row(vec![
                    name.to_string(),
                    "DGX-A100".into(),
                    format!("{nd}"),
                    format!("{} [{}]", fmt_secs(best.output.sim_time), best.batches),
                ]);
            }
        }
        for nd in [1usize, 2, 4, 8, 16] {
            if let Some(best) = sweep_ld_gpu(&g, &dgx2, &[nd], BATCH_SWEEP) {
                t.row(vec![
                    name.to_string(),
                    "DGX-2".into(),
                    format!("{nd}"),
                    format!("{} [{}]", fmt_secs(best.output.sim_time), best.batches),
                ]);
            }
        }
    }
    writeln!(w, "{t}")
}

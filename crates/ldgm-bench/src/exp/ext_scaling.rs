//! **Extension**: communication/computation overlap across device counts.
//!
//! The overlap engine changes only how collectives are billed: batch-level
//! pointer deltas become chunks whose wire time runs on a dedicated comm
//! stream under later kernels, and a device's slice of the reduction
//! starts as soon as that device drains its last batch instead of after
//! the global barrier. This study sweeps the Table-I stand-ins across
//! device counts on the scaled DGX-A100 (1-8 GPUs) and scaled DGX-2
//! (16 GPUs) fabrics and reports simulated time, exposed and hidden
//! communication for the serialized baseline vs overlap mode. Matchings
//! are bit-identical by construction; only the timeline moves.

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig, LdGpuOutput};
use ldgm_gpusim::json::Json;
use ldgm_gpusim::Platform;

use crate::datasets::{registry, scaled_platform, Dataset};
use crate::runner::fmt_secs;
use crate::table::Table;

/// Platforms and the device counts swept on each: the A100 box up to its
/// 8-GPU fabric, then the 16-GPU DGX-2 for the largest point.
pub fn device_sweep() -> Vec<(&'static str, Platform, Vec<usize>)> {
    vec![
        ("dgx-a100", scaled_platform(Platform::dgx_a100()), vec![1, 2, 4, 8]),
        ("dgx2", scaled_platform(Platform::dgx2()), vec![16]),
    ]
}

/// One serialized-vs-overlap comparison at a fixed device count.
#[derive(Clone, Debug)]
pub struct ScalingRecord {
    /// Dataset name (Table I stand-in identifier).
    pub dataset: String,
    /// Platform preset the point ran on.
    pub platform: String,
    /// Devices used.
    pub devices: usize,
    /// Simulated seconds with serialized collectives (default billing).
    pub time_serial: f64,
    /// Simulated seconds with the overlap engine.
    pub time_overlap: f64,
    /// Collective seconds on the critical path, serialized baseline.
    pub exposed_serial: f64,
    /// Collective seconds still exposed with overlap on.
    pub exposed_overlap: f64,
    /// Collective seconds hidden under compute by the overlap engine.
    pub hidden_overlap: f64,
    /// Matching weight (identical across modes by construction).
    pub weight: f64,
    /// Matched edges (identical across modes by construction).
    pub cardinality: u64,
    /// Whether the two mate arrays were bit-identical.
    pub identical: bool,
}

impl ScalingRecord {
    /// Simulated-time ratio serialized / overlap.
    pub fn speedup(&self) -> f64 {
        self.time_serial / self.time_overlap
    }

    /// Exposed-communication seconds removed by the overlap engine.
    pub fn exposed_reduction(&self) -> f64 {
        self.exposed_serial - self.exposed_overlap
    }

    /// Serialize for `BENCH_scaling.json`.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("dataset", self.dataset.clone())
            .with("platform", self.platform.clone())
            .with("devices", self.devices)
            .with("time_serial", self.time_serial)
            .with("time_overlap", self.time_overlap)
            .with("speedup", self.speedup())
            .with("exposed_serial", self.exposed_serial)
            .with("exposed_overlap", self.exposed_overlap)
            .with("exposed_reduction", self.exposed_reduction())
            .with("hidden_overlap", self.hidden_overlap)
            .with("weight", self.weight)
            .with("cardinality", self.cardinality)
            .with("identical", self.identical)
    }
}

/// Serialize a result set as a JSON array document.
pub fn scaling_records_to_json(records: &[ScalingRecord]) -> Json {
    Json::Array(records.iter().map(ScalingRecord::to_json).collect())
}

fn run_mode(g: &ldgm_graph::CsrGraph, cfg: LdGpuConfig) -> Result<LdGpuOutput, String> {
    LdGpu::new(cfg).try_run(g).map_err(|e| e.to_string())
}

fn exposed(out: &LdGpuOutput) -> f64 {
    out.metrics.gauge("comm.exposed_time").unwrap_or(0.0)
}

/// Run the study over `datasets` and the given `(platform, devices)`
/// sweep, returning one record per feasible point.
pub fn run_on(datasets: &[Dataset], w: &mut dyn Write) -> io::Result<Vec<ScalingRecord>> {
    writeln!(w, "# Extension: communication/computation overlap device-count scaling\n")?;
    writeln!(
        w,
        "Serialized collectives vs the overlap engine (comm-stream chunked\n\
         allreduce + early per-device reduce-scatter) across device counts.\n\
         Both modes produce bit-identical matchings; only collective billing\n\
         differs. Points that do not fit device memory are skipped.\n"
    )?;
    let mut t = Table::new(vec![
        "dataset",
        "platform",
        "dev",
        "serial",
        "overlap",
        "speedup",
        "exposed ser",
        "exposed ovl",
        "hidden",
    ]);
    let mut records = Vec::new();
    for ds in datasets {
        let g = ds.build();
        for (pname, platform, devices) in device_sweep() {
            for &dev in &devices {
                let cfg = LdGpuConfig::builder(platform.clone())
                    .devices(dev)
                    .build()
                    .expect("device sweep counts are positive");
                let ser = match run_mode(&g, cfg.clone()) {
                    Ok(out) => out,
                    Err(e) => {
                        writeln!(w, "skip {} {pname} d{dev}: {e}", ds.name)?;
                        continue;
                    }
                };
                let ovl = run_mode(&g, cfg.with_overlap(true))
                    .expect("same memory plan as the serialized run");
                let identical = ovl.matching.mate_array() == ser.matching.mate_array();
                let rec = ScalingRecord {
                    dataset: ds.name.to_string(),
                    platform: pname.to_string(),
                    devices: dev,
                    time_serial: ser.sim_time,
                    time_overlap: ovl.sim_time,
                    exposed_serial: exposed(&ser),
                    exposed_overlap: exposed(&ovl),
                    hidden_overlap: ovl.metrics.gauge("comm.hidden_time").unwrap_or(0.0),
                    weight: ser.matching.weight(&g),
                    cardinality: ser.matching.cardinality() as u64,
                    identical,
                };
                t.row(vec![
                    ds.name.to_string(),
                    pname.to_string(),
                    format!("{dev}"),
                    fmt_secs(rec.time_serial),
                    fmt_secs(rec.time_overlap),
                    format!("{:.2}x", rec.speedup()),
                    fmt_secs(rec.exposed_serial),
                    fmt_secs(rec.exposed_overlap),
                    fmt_secs(rec.hidden_overlap),
                ]);
                records.push(rec);
            }
        }
    }
    writeln!(w, "{t}")?;
    writeln!(
        w,
        "(exposed = collective seconds on the critical path; hidden =\n\
         collective seconds the overlap engine ran under compute)"
    )?;
    Ok(records)
}

/// Run the full 14-dataset study.
pub fn run_records(w: &mut dyn Write) -> io::Result<Vec<ScalingRecord>> {
    run_on(&registry(), w)
}

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    run_records(w).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::by_name;

    #[test]
    fn small_dataset_subset_meets_acceptance_shape() {
        let subset = [by_name("mouse_gene").unwrap(), by_name("Queen_4147").unwrap()];
        let mut sink = Vec::new();
        let records = run_on(&subset, &mut sink).unwrap();
        assert!(!records.is_empty());
        for r in &records {
            assert!(r.identical, "{} d{}: matchings must be bit-identical", r.dataset, r.devices);
            assert!(r.time_serial > 0.0 && r.time_overlap > 0.0);
            assert!(
                r.time_overlap <= r.time_serial + 1e-12,
                "{} d{}: overlap must never be slower ({:.3e} vs {:.3e})",
                r.dataset,
                r.devices,
                r.time_overlap,
                r.time_serial
            );
            assert!(
                r.exposed_overlap <= r.exposed_serial + 1e-12,
                "{} d{}: overlap must not expose more comm",
                r.dataset,
                r.devices
            );
            assert!(r.hidden_overlap >= 0.0);
        }
        // On the multi-device points of these skewed graphs some
        // collective time must actually move off the critical path.
        assert!(
            records.iter().any(|r| r.devices >= 4 && r.exposed_reduction() > 0.0),
            "no multi-device point hid any communication"
        );
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("overlap"));
    }

    #[test]
    fn json_round_trips() {
        let subset = [by_name("mouse_gene").unwrap()];
        let mut sink = Vec::new();
        let records = run_on(&subset, &mut sink).unwrap();
        let doc = scaling_records_to_json(&records).to_string_pretty();
        let parsed = ldgm_gpusim::json::parse(&doc).unwrap();
        let rows = parsed.as_array().unwrap();
        assert_eq!(rows.len(), records.len());
        assert_eq!(rows[0].get("dataset").and_then(Json::as_str), Some("mouse_gene"));
        assert_eq!(rows[0].get("speedup").and_then(Json::as_f64), Some(records[0].speedup()));
        assert_eq!(
            rows[0].get("hidden_overlap").and_then(Json::as_f64),
            Some(records[0].hidden_overlap)
        );
    }

    #[test]
    fn sweep_covers_sixteen_devices() {
        let total: usize = device_sweep().iter().map(|(_, _, d)| d.len()).sum();
        assert_eq!(total, 5);
        assert!(device_sweep().iter().any(|(_, p, d)| d.contains(&16) && p.max_devices >= 16));
    }
}

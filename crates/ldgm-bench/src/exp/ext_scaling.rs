//! **Extension**: communication/computation overlap across device counts,
//! and multi-node cluster scaling.
//!
//! The overlap engine changes only how collectives are billed: batch-level
//! pointer deltas become chunks whose wire time runs on a dedicated comm
//! stream under later kernels, and a device's slice of the reduction
//! starts as soon as that device drains its last batch instead of after
//! the global barrier. This study sweeps the Table-I stand-ins across
//! device counts on the scaled DGX-A100 (1-8 GPUs) and scaled DGX-2
//! (16 GPUs) fabrics and reports simulated time, exposed and hidden
//! communication for the serialized baseline vs overlap mode. Matchings
//! are bit-identical by construction; only the timeline moves.
//!
//! The **cluster sweep** ([`run_cluster_on`]) continues past the single
//! box: 16 → 64 → 128 simulated GPUs as 2/8/16 DGX-A100 nodes over
//! InfiniBand HDR, comparing a flat ring over the slow link, the
//! hierarchical schedule (intra-node ring + leader ring), and the
//! hierarchical schedule under topology-aware part→node placement. All
//! three produce bit-identical matchings; the records capture where the
//! exposed inter-node communication crosses over the per-iteration
//! compute as devices scale, and how much of it placement removes.

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig, LdGpuOutput};
use ldgm_gpusim::json::Json;
use ldgm_gpusim::{Link, Platform};

use crate::datasets::{registry, scaled_platform, Dataset};
use crate::runner::fmt_secs;
use crate::table::Table;

/// Platforms and the device counts swept on each: the A100 box up to its
/// 8-GPU fabric, then the 16-GPU DGX-2 for the largest point.
pub fn device_sweep() -> Vec<(&'static str, Platform, Vec<usize>)> {
    vec![
        ("dgx-a100", scaled_platform(Platform::dgx_a100()), vec![1, 2, 4, 8]),
        ("dgx2", scaled_platform(Platform::dgx2()), vec![16]),
    ]
}

/// Cluster shapes swept by [`run_cluster_on`]: `(nodes, gpus_per_node)`
/// over InfiniBand HDR — 16, 64 and 128 simulated GPUs.
pub fn cluster_sweep() -> Vec<(usize, usize)> {
    vec![(2, 8), (8, 8), (16, 8)]
}

/// One serialized-vs-overlap comparison at a fixed device count.
#[derive(Clone, Debug)]
pub struct ScalingRecord {
    /// Dataset name (Table I stand-in identifier).
    pub dataset: String,
    /// Platform preset the point ran on.
    pub platform: String,
    /// Cluster topology name, or `"flat"` for single-node platforms.
    pub topology: String,
    /// Nodes spanned by the run (1 for single-node platforms).
    pub nodes: usize,
    /// Devices used.
    pub devices: usize,
    /// Simulated seconds with serialized collectives (default billing).
    pub time_serial: f64,
    /// Simulated seconds with the overlap engine.
    pub time_overlap: f64,
    /// Collective seconds on the critical path, serialized baseline.
    pub exposed_serial: f64,
    /// Collective seconds still exposed with overlap on.
    pub exposed_overlap: f64,
    /// Collective seconds hidden under compute by the overlap engine.
    pub hidden_overlap: f64,
    /// Matching weight (identical across modes by construction).
    pub weight: f64,
    /// Matched edges (identical across modes by construction).
    pub cardinality: u64,
    /// Whether the two mate arrays were bit-identical.
    pub identical: bool,
}

impl ScalingRecord {
    /// Simulated-time ratio serialized / overlap.
    pub fn speedup(&self) -> f64 {
        self.time_serial / self.time_overlap
    }

    /// Exposed-communication seconds removed by the overlap engine.
    pub fn exposed_reduction(&self) -> f64 {
        self.exposed_serial - self.exposed_overlap
    }

    /// Serialize for `BENCH_scaling.json`.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("kind", "overlap")
            .with("dataset", self.dataset.clone())
            .with("platform", self.platform.clone())
            .with("topology", self.topology.clone())
            .with("nodes", self.nodes)
            .with("devices", self.devices)
            .with("time_serial", self.time_serial)
            .with("time_overlap", self.time_overlap)
            .with("speedup", self.speedup())
            .with("exposed_serial", self.exposed_serial)
            .with("exposed_overlap", self.exposed_overlap)
            .with("exposed_reduction", self.exposed_reduction())
            .with("hidden_overlap", self.hidden_overlap)
            .with("weight", self.weight)
            .with("cardinality", self.cardinality)
            .with("identical", self.identical)
    }
}

/// Serialize a result set as a JSON array document.
pub fn scaling_records_to_json(records: &[ScalingRecord]) -> Json {
    Json::Array(records.iter().map(ScalingRecord::to_json).collect())
}

/// One flat / hierarchical / topology-aware comparison on a cluster shape.
#[derive(Clone, Debug)]
pub struct ClusterRecord {
    /// Dataset name (Table I stand-in identifier).
    pub dataset: String,
    /// Cluster topology name.
    pub topology: String,
    /// Nodes in the cluster.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Total devices used (`nodes * gpus_per_node`).
    pub devices: usize,
    /// Simulated seconds with a flat ring over the inter-node link.
    pub time_flat: f64,
    /// Simulated seconds with hierarchical collectives, grouped placement.
    pub time_hier: f64,
    /// Simulated seconds with hierarchical collectives + topology-aware
    /// part→node placement.
    pub time_aware: f64,
    /// Inter-node stage seconds, grouped placement.
    pub inter_time_hier: f64,
    /// Inter-node stage seconds under topology-aware placement.
    pub inter_time_aware: f64,
    /// Inter-node wire bytes, grouped placement.
    pub inter_bytes_hier: u64,
    /// Inter-node wire bytes under topology-aware placement.
    pub inter_bytes_aware: u64,
    /// Weighted inter-node cut fraction of grouped placement.
    pub cut_grouped: f64,
    /// Weighted inter-node cut fraction of topology-aware placement.
    pub cut_aware: f64,
    /// Fraction of vertices with an inter-node edge (aware placement);
    /// this scales the inter-node stage payload.
    pub boundary_aware: f64,
    /// Matching weight (identical across modes by construction).
    pub weight: f64,
    /// Matched edges (identical across modes by construction).
    pub cardinality: u64,
    /// Whether all three mate arrays matched the single-node reference.
    pub identical: bool,
}

impl ClusterRecord {
    /// Simulated-time ratio flat / hierarchical.
    pub fn hier_speedup(&self) -> f64 {
        self.time_flat / self.time_hier
    }

    /// Inter-node stage seconds removed by topology-aware placement.
    pub fn inter_reduction(&self) -> f64 {
        self.inter_time_hier - self.inter_time_aware
    }

    /// Inter-node stage share of the hierarchical run — the
    /// quality-per-iteration vs exposed-inter-node-comm crossover signal:
    /// when this passes ~0.5 the slow link, not compute, paces the run.
    pub fn inter_fraction_hier(&self) -> f64 {
        if self.time_hier > 0.0 {
            self.inter_time_hier / self.time_hier
        } else {
            0.0
        }
    }

    /// Serialize for `BENCH_scaling.json`.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("kind", "cluster")
            .with("dataset", self.dataset.clone())
            .with("topology", self.topology.clone())
            .with("nodes", self.nodes)
            .with("gpus_per_node", self.gpus_per_node)
            .with("devices", self.devices)
            .with("time_flat", self.time_flat)
            .with("time_hier", self.time_hier)
            .with("time_aware", self.time_aware)
            .with("hier_speedup", self.hier_speedup())
            .with("inter_time_hier", self.inter_time_hier)
            .with("inter_time_aware", self.inter_time_aware)
            .with("inter_reduction", self.inter_reduction())
            .with("inter_fraction_hier", self.inter_fraction_hier())
            .with("inter_bytes_hier", self.inter_bytes_hier)
            .with("inter_bytes_aware", self.inter_bytes_aware)
            .with("cut_grouped", self.cut_grouped)
            .with("cut_aware", self.cut_aware)
            .with("boundary_aware", self.boundary_aware)
            .with("weight", self.weight)
            .with("cardinality", self.cardinality)
            .with("identical", self.identical)
    }
}

/// Serialize both sweeps as one JSON array document — the
/// `BENCH_scaling.json` layout (overlap rows first, then cluster rows;
/// each row carries a `kind` discriminator).
pub fn combined_records_to_json(overlap: &[ScalingRecord], cluster: &[ClusterRecord]) -> Json {
    let mut rows: Vec<Json> = overlap.iter().map(ScalingRecord::to_json).collect();
    rows.extend(cluster.iter().map(ClusterRecord::to_json));
    Json::Array(rows)
}

fn run_mode(g: &ldgm_graph::CsrGraph, cfg: LdGpuConfig) -> Result<LdGpuOutput, String> {
    LdGpu::new(cfg).try_run(g).map_err(|e| e.to_string())
}

fn exposed(out: &LdGpuOutput) -> f64 {
    out.metrics.gauge("comm.exposed_time").unwrap_or(0.0)
}

/// Run the study over `datasets` and the given `(platform, devices)`
/// sweep, returning one record per feasible point.
pub fn run_on(datasets: &[Dataset], w: &mut dyn Write) -> io::Result<Vec<ScalingRecord>> {
    writeln!(w, "# Extension: communication/computation overlap device-count scaling\n")?;
    writeln!(
        w,
        "Serialized collectives vs the overlap engine (comm-stream chunked\n\
         allreduce + early per-device reduce-scatter) across device counts.\n\
         Both modes produce bit-identical matchings; only collective billing\n\
         differs. Points that do not fit device memory are skipped.\n"
    )?;
    let mut t = Table::new(vec![
        "dataset",
        "platform",
        "dev",
        "serial",
        "overlap",
        "speedup",
        "exposed ser",
        "exposed ovl",
        "hidden",
    ]);
    let mut records = Vec::new();
    for ds in datasets {
        let g = ds.build();
        for (pname, platform, devices) in device_sweep() {
            for &dev in &devices {
                let cfg = LdGpuConfig::builder(platform.clone())
                    .devices(dev)
                    .build()
                    .expect("device sweep counts are positive");
                let ser = match run_mode(&g, cfg.clone()) {
                    Ok(out) => out,
                    Err(e) => {
                        writeln!(w, "skip {} {pname} d{dev}: {e}", ds.name)?;
                        continue;
                    }
                };
                let ovl = run_mode(&g, cfg.with_overlap(true))
                    .expect("same memory plan as the serialized run");
                let identical = ovl.matching.mate_array() == ser.matching.mate_array();
                let (topology, nodes) = match platform.cluster_topology() {
                    Some(t) => (t.name.to_string(), t.nodes_spanned(dev)),
                    None => ("flat".to_string(), 1),
                };
                let rec = ScalingRecord {
                    dataset: ds.name.to_string(),
                    platform: pname.to_string(),
                    topology,
                    nodes,
                    devices: dev,
                    time_serial: ser.sim_time,
                    time_overlap: ovl.sim_time,
                    exposed_serial: exposed(&ser),
                    exposed_overlap: exposed(&ovl),
                    hidden_overlap: ovl.metrics.gauge("comm.hidden_time").unwrap_or(0.0),
                    weight: ser.matching.weight(&g),
                    cardinality: ser.matching.cardinality() as u64,
                    identical,
                };
                t.row(vec![
                    ds.name.to_string(),
                    pname.to_string(),
                    format!("{dev}"),
                    fmt_secs(rec.time_serial),
                    fmt_secs(rec.time_overlap),
                    format!("{:.2}x", rec.speedup()),
                    fmt_secs(rec.exposed_serial),
                    fmt_secs(rec.exposed_overlap),
                    fmt_secs(rec.hidden_overlap),
                ]);
                records.push(rec);
            }
        }
    }
    writeln!(w, "{t}")?;
    writeln!(
        w,
        "(exposed = collective seconds on the critical path; hidden =\n\
         collective seconds the overlap engine ran under compute)"
    )?;
    Ok(records)
}

/// Run the cluster study over `datasets` and the given `(nodes,
/// gpus_per_node)` shapes, returning one record per feasible point.
///
/// Each shape is a scaled DGX-A100 clustered over InfiniBand HDR; three
/// modes run per point — flat ring over the slow link
/// ([`Platform::flattened`]), hierarchical collectives with grouped
/// placement, and hierarchical collectives with topology-aware
/// placement. All mate arrays are checked against a single-node 8-GPU
/// reference run of the same dataset.
pub fn run_cluster_on(
    datasets: &[Dataset],
    shapes: &[(usize, usize)],
    w: &mut dyn Write,
) -> io::Result<Vec<ClusterRecord>> {
    writeln!(w, "\n# Extension: multi-node cluster scaling\n")?;
    writeln!(
        w,
        "Flat ring over InfiniBand HDR vs the hierarchical schedule\n\
         (intra-node ring + node-leader ring) vs hierarchical + topology-\n\
         aware part->node placement, on clusters of scaled DGX-A100 nodes.\n\
         All modes produce bit-identical matchings; only collective\n\
         billing differs. Points that do not fit device memory are\n\
         skipped.\n"
    )?;
    let mut t = Table::new(vec![
        "dataset",
        "nodes",
        "dev",
        "flat",
        "hier",
        "aware",
        "speedup",
        "inter hier",
        "inter aware",
        "inter frac",
    ]);
    let mut records = Vec::new();
    for ds in datasets {
        let g = ds.build();
        let ref_cfg = LdGpuConfig::builder(scaled_platform(Platform::dgx_a100()))
            .devices(8)
            .build()
            .expect("reference device count is positive");
        let reference = match run_mode(&g, ref_cfg) {
            Ok(out) => out,
            Err(e) => {
                writeln!(w, "skip {}: single-node reference failed: {e}", ds.name)?;
                continue;
            }
        };
        for &(nodes, gpn) in shapes {
            let ndev = nodes * gpn;
            let platform =
                scaled_platform(Platform::dgx_a100().clustered(nodes, gpn, Link::INFINIBAND_HDR));
            let hier_cfg = LdGpuConfig::builder(platform.clone())
                .devices(ndev)
                .build()
                .expect("cluster shapes have positive device counts");
            let hier = match run_mode(&g, hier_cfg.clone()) {
                Ok(out) => out,
                Err(e) => {
                    writeln!(w, "skip {} {nodes}x{gpn}: {e}", ds.name)?;
                    continue;
                }
            };
            let flat_cfg = LdGpuConfig::builder(platform.clone().flattened())
                .devices(ndev)
                .build()
                .expect("cluster shapes have positive device counts");
            let flat = run_mode(&g, flat_cfg).expect("same memory plan as the hierarchical run");
            let aware = run_mode(&g, hier_cfg.with_topology_placement(true))
                .expect("placement only changes billing, not the memory plan");
            let reference_mates = reference.matching.mate_array();
            let identical = [&flat, &hier, &aware]
                .iter()
                .all(|out| out.matching.mate_array() == reference_mates);
            let topology = platform
                .cluster_topology()
                .map_or_else(|| "flat".to_string(), |t| t.name.to_string());
            let rec = ClusterRecord {
                dataset: ds.name.to_string(),
                topology,
                nodes,
                gpus_per_node: gpn,
                devices: ndev,
                time_flat: flat.sim_time,
                time_hier: hier.sim_time,
                time_aware: aware.sim_time,
                inter_time_hier: hier.metrics.gauge("comm.inter_time").unwrap_or(0.0),
                inter_time_aware: aware.metrics.gauge("comm.inter_time").unwrap_or(0.0),
                inter_bytes_hier: hier.metrics.counter("comm.inter_node_bytes"),
                inter_bytes_aware: aware.metrics.counter("comm.inter_node_bytes"),
                cut_grouped: hier.metrics.gauge("part.inter_node_cut").unwrap_or(0.0),
                cut_aware: aware.metrics.gauge("part.inter_node_cut").unwrap_or(0.0),
                boundary_aware: aware.metrics.gauge("part.boundary_fraction").unwrap_or(0.0),
                weight: hier.matching.weight(&g),
                cardinality: hier.matching.cardinality() as u64,
                identical,
            };
            t.row(vec![
                ds.name.to_string(),
                format!("{nodes}"),
                format!("{ndev}"),
                fmt_secs(rec.time_flat),
                fmt_secs(rec.time_hier),
                fmt_secs(rec.time_aware),
                format!("{:.2}x", rec.hier_speedup()),
                fmt_secs(rec.inter_time_hier),
                fmt_secs(rec.inter_time_aware),
                format!("{:.0}%", rec.inter_fraction_hier() * 100.0),
            ]);
            records.push(rec);
        }
    }
    writeln!(w, "{t}")?;
    writeln!(
        w,
        "(inter = seconds billed to the inter-node stage; inter frac =\n\
         its share of the hierarchical run — past ~50% the slow link, not\n\
         per-iteration compute, paces the matching)"
    )?;
    if let Some(r) = records
        .iter()
        .filter(|r| r.devices >= 64)
        .max_by(|a, b| a.inter_reduction().total_cmp(&b.inter_reduction()))
    {
        writeln!(
            w,
            "best placement win at >=64 GPUs: {} on {} nodes — inter-node\n\
             time {} -> {} (cut {:.2} -> {:.2})",
            r.dataset,
            r.nodes,
            fmt_secs(r.inter_time_hier),
            fmt_secs(r.inter_time_aware),
            r.cut_grouped,
            r.cut_aware,
        )?;
    }
    Ok(records)
}

/// Run the full 14-dataset study.
pub fn run_records(w: &mut dyn Write) -> io::Result<Vec<ScalingRecord>> {
    run_on(&registry(), w)
}

/// Run the full 14-dataset cluster study over the default shapes.
pub fn run_cluster_records(w: &mut dyn Write) -> io::Result<Vec<ClusterRecord>> {
    run_cluster_on(&registry(), &cluster_sweep(), w)
}

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    run_records(w)?;
    run_cluster_records(w).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::by_name;

    #[test]
    fn small_dataset_subset_meets_acceptance_shape() {
        let subset = [by_name("mouse_gene").unwrap(), by_name("Queen_4147").unwrap()];
        let mut sink = Vec::new();
        let records = run_on(&subset, &mut sink).unwrap();
        assert!(!records.is_empty());
        for r in &records {
            assert!(r.identical, "{} d{}: matchings must be bit-identical", r.dataset, r.devices);
            assert!(r.time_serial > 0.0 && r.time_overlap > 0.0);
            assert!(
                r.time_overlap <= r.time_serial + 1e-12,
                "{} d{}: overlap must never be slower ({:.3e} vs {:.3e})",
                r.dataset,
                r.devices,
                r.time_overlap,
                r.time_serial
            );
            assert!(
                r.exposed_overlap <= r.exposed_serial + 1e-12,
                "{} d{}: overlap must not expose more comm",
                r.dataset,
                r.devices
            );
            assert!(r.hidden_overlap >= 0.0);
        }
        // On the multi-device points of these skewed graphs some
        // collective time must actually move off the critical path.
        assert!(
            records.iter().any(|r| r.devices >= 4 && r.exposed_reduction() > 0.0),
            "no multi-device point hid any communication"
        );
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("overlap"));
    }

    #[test]
    fn json_round_trips() {
        let subset = [by_name("mouse_gene").unwrap()];
        let mut sink = Vec::new();
        let records = run_on(&subset, &mut sink).unwrap();
        let doc = scaling_records_to_json(&records).to_string_pretty();
        let parsed = ldgm_gpusim::json::parse(&doc).unwrap();
        let rows = parsed.as_array().unwrap();
        assert_eq!(rows.len(), records.len());
        assert_eq!(rows[0].get("kind").and_then(Json::as_str), Some("overlap"));
        assert_eq!(rows[0].get("dataset").and_then(Json::as_str), Some("mouse_gene"));
        // Satellite: every record is self-describing about its fabric.
        for (row, rec) in rows.iter().zip(&records) {
            assert_eq!(row.get("topology").and_then(Json::as_str), Some(rec.topology.as_str()));
            assert_eq!(row.get("nodes").and_then(Json::as_f64), Some(rec.nodes as f64));
            assert_eq!(row.get("topology").and_then(Json::as_str), Some("flat"));
        }
        assert_eq!(rows[0].get("speedup").and_then(Json::as_f64), Some(records[0].speedup()));
        assert_eq!(
            rows[0].get("hidden_overlap").and_then(Json::as_f64),
            Some(records[0].hidden_overlap)
        );
    }

    #[test]
    fn sweep_covers_sixteen_devices() {
        let total: usize = device_sweep().iter().map(|(_, _, d)| d.len()).sum();
        assert_eq!(total, 5);
        assert!(device_sweep().iter().any(|(_, p, d)| d.contains(&16) && p.max_devices >= 16));
    }

    #[test]
    fn cluster_sweep_reaches_128_gpus() {
        let shapes = cluster_sweep();
        assert_eq!(shapes.first(), Some(&(2, 8)));
        assert!(shapes.iter().any(|&(n, g)| n * g == 64));
        assert_eq!(shapes.iter().map(|&(n, g)| n * g).max(), Some(128));
    }

    #[test]
    fn cluster_smoke_point_matches_single_node_bit_for_bit() {
        // The exact point the CI cluster smoke step runs: 2 nodes x 4
        // GPUs on the smallest stand-in.
        let subset = [by_name("mouse_gene").unwrap()];
        let mut sink = Vec::new();
        let records = run_cluster_on(&subset, &[(2, 4)], &mut sink).unwrap();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert!(r.identical, "cluster matchings must equal the single-node run");
        assert_eq!((r.nodes, r.gpus_per_node, r.devices), (2, 4, 8));
        assert_eq!(r.topology, "DGX-A100");
        assert!(
            r.time_hier <= r.time_flat + 1e-12,
            "hierarchical must never lose to the flat ring ({:.3e} vs {:.3e})",
            r.time_hier,
            r.time_flat
        );
        assert!(
            r.inter_time_aware <= r.inter_time_hier + 1e-12,
            "aware placement must not add inter-node time"
        );
        assert!(r.inter_bytes_aware <= r.inter_bytes_hier);
        for cut in [r.cut_grouped, r.cut_aware, r.boundary_aware] {
            assert!((0.0..=1.0).contains(&cut), "cut metrics are fractions, got {cut}");
        }
        assert!(r.cut_aware <= r.cut_grouped + 1e-12, "aware placement must not cut more");
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("cluster scaling"));
    }

    #[test]
    fn combined_json_keeps_both_kinds() {
        let subset = [by_name("mouse_gene").unwrap()];
        let mut sink = Vec::new();
        let overlap = run_on(&subset, &mut sink).unwrap();
        let cluster = run_cluster_on(&subset, &[(2, 4)], &mut sink).unwrap();
        let doc = combined_records_to_json(&overlap, &cluster).to_string_pretty();
        let parsed = ldgm_gpusim::json::parse(&doc).unwrap();
        let rows = parsed.as_array().unwrap();
        assert_eq!(rows.len(), overlap.len() + cluster.len());
        let kinds: Vec<_> =
            rows.iter().map(|r| r.get("kind").and_then(Json::as_str).unwrap()).collect();
        assert_eq!(kinds.iter().filter(|k| **k == "overlap").count(), overlap.len());
        assert_eq!(kinds.iter().filter(|k| **k == "cluster").count(), cluster.len());
        let c = rows.last().unwrap();
        assert_eq!(c.get("nodes").and_then(Json::as_f64), Some(2.0));
        assert_eq!(c.get("hier_speedup").and_then(Json::as_f64), Some(cluster[0].hier_speedup()));
        assert_eq!(c.get("identical").and_then(Json::as_bool), Some(true));
    }
}

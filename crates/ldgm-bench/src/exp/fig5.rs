//! **Fig. 5**: component-wise timing breakdown (% of overall) — pointing,
//! matching, allreduce, batch transfer, synchronization — for SMALL and
//! LARGE graphs on 1–8 GPUs.
//!
//! Expected shape (paper): synchronization + communication ≈ 90% of
//! multi-GPU time; on a single GPU the pointing phase takes ~50%.

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_gpusim::Platform;

use crate::datasets::{registry, scaled_platform};
use crate::table::Table;

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Fig. 5: component-wise timing (% of overall)\n")?;
    let platform = scaled_platform(Platform::dgx_a100());
    let mut t = Table::new(vec![
        "Graph", "GPUs", "batches", "point%", "match%", "allred%", "xfer%", "sync%",
    ]);
    for d in registry() {
        let g = d.build();
        for nd in [1usize, 4, 8] {
            let cfg = LdGpuConfig::new(platform.clone()).devices(nd).without_iteration_profile();
            let Ok(out) = LdGpu::new(cfg).try_run(&g) else {
                continue;
            };
            let pct = out.profile.phases.percentages();
            t.row(vec![
                d.name.to_string(),
                format!("{nd}"),
                format!("{}", out.batches),
                format!("{:.0}", pct[0]),
                format!("{:.0}", pct[1]),
                format!("{:.0}", pct[2]),
                format!("{:.0}", pct[3]),
                format!("{:.0}", pct[4]),
            ]);
        }
    }
    writeln!(w, "{t}")
}

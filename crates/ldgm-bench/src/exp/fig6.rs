//! **Fig. 6**: scalability potential of batching — LD-GPU with 1
//! (default), 3, 5 and 10 batches on 1–8 GPUs, for kmer_U1a,
//! mycielskian18 and kmer_V2a.
//!
//! Expected shape (paper): the single-batch default does not scale with
//! devices on these inputs (collective overheads offset the matching-phase
//! gains); deliberately raising the batch count redistributes the
//! independent pointing work and improves multi-device scalability despite
//! the batch-transfer overheads.

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_gpusim::Platform;

use crate::datasets::{by_name, scaled_platform};
use crate::runner::fmt_secs;
use crate::table::Table;

/// The three graphs of the paper's Fig. 6.
pub const GRAPHS: &[&str] = &["kmer_U1a", "mycielskian18", "kmer_V2a"];
/// The batch counts of the paper's Fig. 6.
pub const BATCHES: &[usize] = &[1, 3, 5, 10];

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Fig. 6: LD-GPU with 1/3/5/10 batches on 1-8 GPUs (s)\n")?;
    let platform = scaled_platform(Platform::dgx_a100());
    let devices = [1usize, 2, 4, 8];
    let mut header = vec!["Graph".to_string(), "batches".to_string()];
    header.extend(devices.iter().map(|d| format!("{d} GPU")));
    header.push("scaling 1->8".into());
    let mut t = Table::new(header);
    for name in GRAPHS {
        let g = by_name(name).expect("registry dataset").build();
        for &nb in BATCHES {
            let mut cells = vec![name.to_string(), format!("{nb}")];
            let mut first = None;
            let mut last = None;
            for &nd in &devices {
                let cfg = LdGpuConfig::new(platform.clone())
                    .devices(nd)
                    .batches(nb)
                    .without_iteration_profile();
                match LdGpu::new(cfg).try_run(&g) {
                    Ok(out) => {
                        if first.is_none() {
                            first = Some(out.sim_time);
                        }
                        last = Some(out.sim_time);
                        cells.push(fmt_secs(out.sim_time));
                    }
                    Err(_) => cells.push("-".into()),
                }
            }
            match (first, last) {
                (Some(f), Some(l)) if l > 0.0 => cells.push(format!("{:.1}x", f / l)),
                _ => cells.push("-".into()),
            }
            t.row(cells);
        }
    }
    writeln!(w, "{t}")?;
    writeln!(
        w,
        "The paper's §IV-B reading: the batched configurations scale better\n\
         with device count than the single-batch default (whose multi-GPU\n\
         time is bounded by matching-phase collectives), at the price of\n\
         deliberately introduced batch-transfer overheads."
    )
}

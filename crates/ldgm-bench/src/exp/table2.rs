//! **Table II**: matching quality of LD-GPU and SR-OMP as percentage
//! difference from the exact optimum (Blossom, the LEMON stand-in), on
//! SMALL-family instances; geometric mean at the bottom.
//!
//! Expected shape (paper): both ½-approximate methods land within ~3–13%
//! of optimal (geomean ≈ 6%), with near-identical quality to each other;
//! the red-blue auction extension column is visibly worse — the reason the
//! locally dominant family displaced it.

use std::io::{self, Write};

use ldgm_core::auction::auction;
use ldgm_core::augment::augment_short;
use ldgm_core::blossom::blossom_mwm;
use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_core::suitor_par::suitor_par;
use ldgm_core::verify::pct_diff_from_optimal;
use ldgm_gpusim::Platform;

use crate::datasets::quality_registry;
use crate::runner::geomean;
use crate::table::Table;

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Table II: quality %-difference from the exact optimum (lower is better)\n")?;
    writeln!(
        w,
        "Exact optimum from the Blossom solver (LEMON stand-in) on Blossom-sized\n\
         instances of the seven SMALL families. Auction is the paper's cited\n\
         prior GPU approach, included to quantify its quality gap.\n"
    )?;
    let platform = Platform::dgx_a100();
    let mut t = Table::new(vec!["Graph", "LD-GPU", "SR-OMP", "Auction", "LD+2/3-aug"]);
    let (mut ld_all, mut omp_all, mut auc_all, mut aug_all) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for d in quality_registry() {
        let g = d.build();
        let opt = blossom_mwm(&g, 1000.0).weight(&g);
        let ld_match = LdGpu::new(LdGpuConfig::new(platform.clone()).devices(2)).run(&g).matching;
        let ld = ld_match.weight(&g);
        let omp = suitor_par(&g).weight(&g);
        let auc = auction(&g, d.seed).weight(&g);
        let aug = augment_short(&g, ld_match, 5, d.seed).matching.weight(&g);
        let (pld, pomp, pauc, paug) = (
            pct_diff_from_optimal(ld, opt),
            pct_diff_from_optimal(omp, opt),
            pct_diff_from_optimal(auc, opt),
            pct_diff_from_optimal(aug, opt),
        );
        ld_all.push(pld.max(0.01));
        omp_all.push(pomp.max(0.01));
        auc_all.push(pauc.max(0.01));
        aug_all.push(paug.max(0.01));
        t.row(vec![
            d.name.to_string(),
            format!("{pld:.1}"),
            format!("{pomp:.1}"),
            format!("{pauc:.1}"),
            format!("{paug:.1}"),
        ]);
    }
    t.row(vec![
        "Geo. Mean".to_string(),
        format!("{:.2}", geomean(&ld_all)),
        format!("{:.2}", geomean(&omp_all)),
        format!("{:.2}", geomean(&auc_all)),
        format!("{:.2}", geomean(&aug_all)),
    ]);
    writeln!(w, "{t}")?;
    writeln!(
        w,
        "LD+2/3-aug: LD-GPU refined by Pettie-Sanders short augmentations\n\
         (ldgm_core::augment) - the paper's SV future-work direction."
    )
}

//! **Extension**: GPU-generation outlook — LD-GPU across four platform
//! generations, from the paper's DGX-2 (2018) and DGX-A100 (2020) to
//! DGX-H100 and the GB200 NVL72 rack the paper's introduction motivates
//! ("up to 72 latest NVIDIA Blackwell GPUs interconnected within a rack
//! using NVLink ... an order-of-magnitude increase in the GPU-GPU
//! bandwidth").

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_gpusim::Platform;

use crate::datasets::{by_name, scaled_platform};
use crate::runner::fmt_secs;
use crate::table::Table;

/// Graphs used in the generation study.
pub const GRAPHS: &[&str] = &["AGATHA-2015", "GAP-urand", "com-Friendster"];

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Extension: LD-GPU across GPU generations (8 GPUs each; NVL72 also at 72)\n")?;
    let platforms: Vec<(Platform, usize)> = vec![
        (Platform::dgx2(), 8),
        (Platform::dgx_a100(), 8),
        (Platform::dgx_h100(), 8),
        (Platform::nvl72(), 8),
        (Platform::nvl72(), 72),
    ];
    let mut t = Table::new(vec!["Graph", "platform", "GPUs", "time", "vs DGX-2 (8)"]);
    for name in GRAPHS {
        let g = by_name(name).expect("registry dataset").build();
        let mut base: Option<f64> = None;
        for (platform, ndev) in &platforms {
            let p = scaled_platform(platform.clone());
            let cfg = LdGpuConfig::new(p).devices(*ndev).without_iteration_profile();
            let Ok(out) = LdGpu::new(cfg).try_run(&g) else {
                continue;
            };
            if base.is_none() {
                base = Some(out.sim_time);
            }
            t.row(vec![
                name.to_string(),
                platform.name.to_string(),
                format!("{ndev}"),
                fmt_secs(out.sim_time),
                format!("{:.1}x", base.unwrap() / out.sim_time),
            ]);
        }
    }
    writeln!(w, "{t}")?;
    writeln!(
        w,
        "Note: whether 72 GPUs beat 8 on the same rack is payload-dependent:\n\
         the ring latency term grows with device count while per-device\n\
         kernel work shrinks - the paper's collective-dominated regime."
    )
}

//! **Fig. 4**: strong scaling of LD-GPU on 1–8 A100 GPUs over the LARGE
//! inputs, best execution time over a range of batch counts.
//!
//! Expected shape (paper): up to ~47× superlinear speedup at 8 GPUs for
//! inputs whose low-device-count runs pay sequential batch-processing and
//! synchronization overheads (partitions stop needing batches beyond ~4
//! devices); scalability plateaus past 4 GPUs once collectives dominate.

use std::io::{self, Write};

use ldgm_gpusim::Platform;

use crate::datasets::{registry, scaled_platform, Group};
use crate::runner::{fmt_secs, sweep_ld_gpu, BATCH_SWEEP};
use crate::table::Table;

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Fig. 4: LD-GPU strong scaling on 1-8 A100 GPUs (LARGE inputs)\n")?;
    writeln!(w, "Cells: best time over batch sweep (speedup vs 1 GPU).\n")?;
    let platform = scaled_platform(Platform::dgx_a100());
    let devices = [1usize, 2, 4, 8];
    let mut header: Vec<String> = vec!["Graph".into()];
    header.extend(devices.iter().map(|d| format!("{d} GPU")));
    let mut t = Table::new(header);
    for d in registry().into_iter().filter(|d| d.group == Group::Large) {
        let g = d.build();
        let mut cells = vec![d.name.to_string()];
        let mut t1 = None;
        for &nd in &devices {
            match sweep_ld_gpu(&g, &platform, &[nd], BATCH_SWEEP) {
                Some(best) => {
                    let time = best.output.sim_time;
                    if t1.is_none() {
                        t1 = Some(time);
                    }
                    let spd = t1.unwrap() / time;
                    cells.push(format!("{} ({spd:.1}x)", fmt_secs(time)));
                }
                None => cells.push("-".into()),
            }
        }
        t.row(cells);
    }
    writeln!(w, "{t}")
}

//! **Table III**: LD-GPU speedup on a single NVIDIA A100 vs V100, SMALL
//! graphs, single device (isolating device generation from communication
//! and batching).
//!
//! Expected shape (paper): 1–4.5× A100 advantage, geometric mean ≈ 2.35×,
//! with the low-arithmetic-intensity kmer graphs benefiting the most.

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_gpusim::Platform;

use crate::datasets::{by_name, scaled_platform};
use crate::runner::geomean;
use crate::table::Table;

/// The six graphs of the paper's Table III.
pub const GRAPHS: &[&str] =
    &["Queen_4147", "mycielskian18", "com-Orkut", "kmer_U1a", "kmer_V2a", "mouse_gene"];

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Table III: LD-GPU speedup on a single A100 vs a single V100\n")?;
    let a100 = scaled_platform(Platform::dgx_a100());
    let v100 = scaled_platform(Platform::dgx2());
    let mut t = Table::new(vec!["Graph", "A100 (s)", "V100 (s)", "A100 Speedup"]);
    let mut ratios = Vec::new();
    for name in GRAPHS {
        let g = by_name(name).expect("registry dataset").build();
        let ta =
            LdGpu::new(LdGpuConfig::new(a100.clone()).without_iteration_profile()).run(&g).sim_time;
        let tv =
            LdGpu::new(LdGpuConfig::new(v100.clone()).without_iteration_profile()).run(&g).sim_time;
        let r = tv / ta;
        ratios.push(r);
        t.row(vec![name.to_string(), format!("{ta:.5}"), format!("{tv:.5}"), format!("{r:.2}x")]);
    }
    t.row(vec![
        "Geo. Mean".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}x", geomean(&ratios)),
    ]);
    writeln!(w, "{t}")
}

//! Timing and sweep helpers shared by the experiment binaries, plus the
//! JSON record format experiment results are exported in.

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig, LdGpuOutput};
use ldgm_gpusim::{Json, Platform};
use ldgm_graph::csr::CsrGraph;
use std::time::Instant;

/// Wall-clock the closure, best of `reps` runs (the paper reports best of
/// ten; our CPU baselines use fewer reps since the variance sources the
/// paper guards against — DVFS, NUMA — are absent here).
pub fn best_wall_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
        out = Some(r);
    }
    (best, out.unwrap())
}

/// Result of an LD-GPU configuration sweep.
#[derive(Clone, Debug)]
pub struct SweepBest {
    /// The winning run.
    pub output: LdGpuOutput,
    /// Devices of the winning configuration.
    pub devices: usize,
    /// Batches of the winning configuration.
    pub batches: usize,
}

/// Sweep LD-GPU over device and batch counts on `platform`, returning the
/// configuration with the lowest simulated time. Infeasible combinations
/// (batch plans that do not fit) are skipped; `None` if nothing fits.
pub fn sweep_ld_gpu(
    g: &CsrGraph,
    platform: &Platform,
    device_counts: &[usize],
    batch_counts: &[usize],
) -> Option<SweepBest> {
    let mut best: Option<SweepBest> = None;
    for &nd in device_counts {
        if nd > platform.max_devices {
            continue;
        }
        for &nb in batch_counts {
            let Ok(cfg) = LdGpuConfig::builder(platform.clone())
                .devices(nd)
                .batches(nb)
                .collect_iterations(false)
                .build()
            else {
                continue; // degenerate sweep point (0 devices/batches)
            };
            let Ok(out) = LdGpu::new(cfg).try_run(g) else {
                continue;
            };
            if best.as_ref().is_none_or(|b| out.sim_time < b.output.sim_time) {
                best = Some(SweepBest { devices: nd, batches: nb, output: out });
            }
        }
        // Also try the automatic (minimal) batch plan.
        let Ok(cfg) =
            LdGpuConfig::builder(platform.clone()).devices(nd).collect_iterations(false).build()
        else {
            continue;
        };
        if let Ok(out) = LdGpu::new(cfg).try_run(g) {
            if best.as_ref().is_none_or(|b| out.sim_time < b.output.sim_time) {
                let batches = out.batches;
                best = Some(SweepBest { devices: nd, batches, output: out });
            }
        }
    }
    best
}

/// One benchmark measurement, exportable as a JSON record so experiment
/// sweeps can be archived and diffed across runs (same spirit as the
/// CLI's `--report-json`, but one compact row per configuration).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Dataset name (Table I stand-in identifier).
    pub dataset: String,
    /// Algorithm registry name.
    pub algorithm: String,
    /// Platform preset, empty for host algorithms.
    pub platform: String,
    /// Devices used.
    pub devices: usize,
    /// Batches per device.
    pub batches: usize,
    /// Run time in seconds (simulated or wall-clock).
    pub time: f64,
    /// Matched edges.
    pub cardinality: u64,
    /// Matching weight.
    pub weight: f64,
    /// Iterations/rounds.
    pub iterations: u64,
}

impl BenchRecord {
    /// Record the winning configuration of an LD-GPU sweep.
    pub fn from_sweep(dataset: &str, platform: &str, g: &CsrGraph, best: &SweepBest) -> Self {
        BenchRecord {
            dataset: dataset.to_string(),
            algorithm: "ld-gpu".to_string(),
            platform: platform.to_string(),
            devices: best.devices,
            batches: best.batches,
            time: best.output.sim_time,
            cardinality: best.output.matching.cardinality() as u64,
            weight: best.output.matching.weight(g),
            iterations: best.output.iterations as u64,
        }
    }

    /// Serialize to a flat JSON object.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("dataset", self.dataset.clone())
            .with("algorithm", self.algorithm.clone())
            .with("platform", self.platform.clone())
            .with("devices", self.devices)
            .with("batches", self.batches)
            .with("time", self.time)
            .with("cardinality", self.cardinality)
            .with("weight", self.weight)
            .with("iterations", self.iterations)
    }
}

/// Serialize a result set as a JSON array document.
pub fn records_to_json(records: &[BenchRecord]) -> Json {
    Json::Array(records.iter().map(BenchRecord::to_json).collect())
}

/// Common CLI of the `ext_*` study binaries: `--out PATH` overriding the
/// study's default JSON location, plus positional dataset names. Studies
/// with extra flags claim them through the `extra` callback.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtCli {
    /// Where the JSON document lands (`--out`, or the study default).
    pub out_path: String,
    /// Positional dataset names; empty means the study's default set.
    pub names: Vec<String>,
}

impl ExtCli {
    /// Parse the process arguments with no study-specific flags.
    pub fn parse_env(default_out: &str) -> Self {
        Self::parse_env_with(default_out, |_, _| false)
    }

    /// Parse the process arguments; `extra(flag, args)` returns `true`
    /// when the study recognized the flag (pulling any operands off
    /// `args` itself). Unclaimed `--flags` abort with a usage error.
    pub fn parse_env_with(
        default_out: &str,
        extra: impl FnMut(&str, &mut dyn Iterator<Item = String>) -> bool,
    ) -> Self {
        Self::parse_from(default_out, std::env::args().skip(1), extra)
    }

    /// Parse from an explicit argument stream (testable core of
    /// [`ExtCli::parse_env_with`]).
    pub fn parse_from(
        default_out: &str,
        args: impl IntoIterator<Item = String>,
        mut extra: impl FnMut(&str, &mut dyn Iterator<Item = String>) -> bool,
    ) -> Self {
        let mut cli = ExtCli { out_path: default_out.to_string(), names: Vec::new() };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            if a == "--out" {
                cli.out_path = it.next().expect("--out requires a path");
            } else if a.starts_with("--") {
                assert!(extra(&a, &mut it), "unknown flag {a}");
            } else {
                cli.names.push(a);
            }
        }
        cli
    }
}

/// Write the document to `out_path` (pretty-printed, newline-terminated)
/// and parse the written text back, so every `ext_*` binary cross-checks
/// what actually landed on disk against its in-memory records.
pub fn write_json_doc(out_path: &str, doc: &Json) -> Json {
    let text = doc.to_string_pretty() + "\n";
    std::fs::write(out_path, &text).expect("JSON write failed");
    ldgm_gpusim::json::parse(&text).expect("written JSON must parse")
}

/// The paper's sweep ranges: 1–8 devices, up to 15 batches (we sample the
/// batch range).
pub const DEVICE_SWEEP: &[usize] = &[1, 2, 4, 6, 8];
/// Sampled batch counts within the paper's "less than 15" range.
pub const BATCH_SWEEP: &[usize] = &[1, 2, 3, 5, 10];

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-300).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Format seconds compactly (matches the paper's precision style).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{s:.4}")
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::gen::urand;

    #[test]
    fn best_wall_returns_min() {
        let mut i = 0;
        let (t, v) = best_wall_of(3, || {
            i += 1;
            i
        });
        assert!(t >= 0.0);
        assert_eq!(v, 3);
    }

    #[test]
    fn sweep_finds_a_configuration() {
        let g = urand(400, 2000, 1);
        let best = sweep_ld_gpu(&g, &Platform::dgx_a100(), &[1, 2], &[1, 2]).unwrap();
        assert!(best.output.sim_time > 0.0);
        assert!(best.devices <= 2);
    }

    #[test]
    fn sweep_skips_infeasible() {
        let g = urand(400, 2000, 2);
        let p = Platform::dgx_a100().with_device_memory(10); // nothing fits
        assert!(sweep_ld_gpu(&g, &p, &[1], &[1]).is_none());
    }

    #[test]
    fn bench_record_round_trips_through_json() {
        let g = urand(400, 2000, 3);
        let best = sweep_ld_gpu(&g, &Platform::dgx_a100(), &[1, 2], &[1]).unwrap();
        let rec = BenchRecord::from_sweep("urand-400", "dgx-a100", &g, &best);
        let doc = records_to_json(std::slice::from_ref(&rec));
        let parsed = ldgm_gpusim::json::parse(&doc.to_string_pretty()).unwrap();
        let row = &parsed.as_array().unwrap()[0];
        assert_eq!(row.get("dataset").and_then(Json::as_str), Some("urand-400"));
        assert_eq!(row.get("algorithm").and_then(Json::as_str), Some("ld-gpu"));
        assert_eq!(row.get("time").and_then(Json::as_f64), Some(best.output.sim_time));
        assert_eq!(row.get("cardinality").and_then(Json::as_f64), Some(rec.cardinality as f64));
    }

    #[test]
    fn ext_cli_parses_out_names_and_extra_flags() {
        let args = ["--out", "x.json", "alpha", "--reps", "3", "beta"];
        let mut reps = 0usize;
        let cli =
            ExtCli::parse_from("default.json", args.iter().map(|s| s.to_string()), |flag, rest| {
                if flag == "--reps" {
                    reps = rest.next().unwrap().parse().unwrap();
                    true
                } else {
                    false
                }
            });
        assert_eq!(cli.out_path, "x.json");
        assert_eq!(cli.names, ["alpha", "beta"]);
        assert_eq!(reps, 3);

        let cli = ExtCli::parse_from("default.json", std::iter::empty(), |_, _| false);
        assert_eq!(cli, ExtCli { out_path: "default.json".into(), names: Vec::new() });
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn ext_cli_rejects_unknown_flags() {
        ExtCli::parse_from("d.json", ["--bogus".to_string()], |_, _| false);
    }

    #[test]
    fn write_json_doc_round_trips() {
        let dir = std::env::temp_dir().join("ldgm_runner_json_doc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        let doc = Json::Array(vec![Json::object().with("k", 1u64)]);
        let parsed = write_json_doc(path.to_str().unwrap(), &doc);
        assert_eq!(parsed.as_array().unwrap()[0].get("k").and_then(Json::as_f64), Some(1.0));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt_secs(2.345), "2.35");
        assert_eq!(fmt_secs(0.01234), "0.0123");
        assert_eq!(fmt_secs(5e-6), "5.0us");
    }
}

//! Timing and sweep helpers shared by the experiment binaries.

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig, LdGpuOutput};
use ldgm_gpusim::Platform;
use ldgm_graph::csr::CsrGraph;
use std::time::Instant;

/// Wall-clock the closure, best of `reps` runs (the paper reports best of
/// ten; our CPU baselines use fewer reps since the variance sources the
/// paper guards against — DVFS, NUMA — are absent here).
pub fn best_wall_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
        out = Some(r);
    }
    (best, out.unwrap())
}

/// Result of an LD-GPU configuration sweep.
#[derive(Clone, Debug)]
pub struct SweepBest {
    /// The winning run.
    pub output: LdGpuOutput,
    /// Devices of the winning configuration.
    pub devices: usize,
    /// Batches of the winning configuration.
    pub batches: usize,
}

/// Sweep LD-GPU over device and batch counts on `platform`, returning the
/// configuration with the lowest simulated time. Infeasible combinations
/// (batch plans that do not fit) are skipped; `None` if nothing fits.
pub fn sweep_ld_gpu(
    g: &CsrGraph,
    platform: &Platform,
    device_counts: &[usize],
    batch_counts: &[usize],
) -> Option<SweepBest> {
    let mut best: Option<SweepBest> = None;
    for &nd in device_counts {
        if nd > platform.max_devices {
            continue;
        }
        for &nb in batch_counts {
            let cfg = LdGpuConfig::new(platform.clone())
                .devices(nd)
                .batches(nb)
                .without_iteration_profile();
            let Ok(out) = LdGpu::new(cfg).try_run(g) else {
                continue;
            };
            if best.as_ref().is_none_or(|b| out.sim_time < b.output.sim_time) {
                best = Some(SweepBest { devices: nd, batches: nb, output: out });
            }
        }
        // Also try the automatic (minimal) batch plan.
        let cfg = LdGpuConfig::new(platform.clone()).devices(nd).without_iteration_profile();
        if let Ok(out) = LdGpu::new(cfg).try_run(g) {
            if best.as_ref().is_none_or(|b| out.sim_time < b.output.sim_time) {
                let batches = out.batches;
                best = Some(SweepBest { devices: nd, batches, output: out });
            }
        }
    }
    best
}

/// The paper's sweep ranges: 1–8 devices, up to 15 batches (we sample the
/// batch range).
pub const DEVICE_SWEEP: &[usize] = &[1, 2, 4, 6, 8];
/// Sampled batch counts within the paper's "less than 15" range.
pub const BATCH_SWEEP: &[usize] = &[1, 2, 3, 5, 10];

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-300).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Format seconds compactly (matches the paper's precision style).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{s:.4}")
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::gen::urand;

    #[test]
    fn best_wall_returns_min() {
        let mut i = 0;
        let (t, v) = best_wall_of(3, || {
            i += 1;
            i
        });
        assert!(t >= 0.0);
        assert_eq!(v, 3);
    }

    #[test]
    fn sweep_finds_a_configuration() {
        let g = urand(400, 2000, 1);
        let best = sweep_ld_gpu(&g, &Platform::dgx_a100(), &[1, 2], &[1, 2]).unwrap();
        assert!(best.output.sim_time > 0.0);
        assert!(best.devices <= 2);
    }

    #[test]
    fn sweep_skips_infeasible() {
        let g = urand(400, 2000, 2);
        let p = Platform::dgx_a100().with_device_memory(10); // nothing fits
        assert!(sweep_ld_gpu(&g, &p, &[1], &[1]).is_none());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt_secs(2.345), "2.35");
        assert_eq!(fmt_secs(0.01234), "0.0123");
        assert_eq!(fmt_secs(5e-6), "5.0us");
    }
}

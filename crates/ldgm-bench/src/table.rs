//! Minimal aligned text-table printer for the experiment reports.

/// A column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncol) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["Graph", "Time"]);
        t.row(vec!["kron", "1.25"]);
        t.row(vec!["a-very-long-name", "0.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Graph"));
        assert!(lines[2].ends_with("1.25"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert!(t.render().lines().count() == 3);
    }
}

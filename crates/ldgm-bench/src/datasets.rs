//! The dataset registry: synthetic stand-ins for the paper's fourteen
//! Table I graphs, scaled ~1000× down (|E| here ≈ |E|_paper / 1000, where
//! |E| counts *directed* edges / matrix nonzeros as in the paper's table).
//!
//! Device memory is scaled by the same factor —
//! [`scaled_platform`] gives each simulated GPU 40 MB (A100) / 32 MB
//! (V100) instead of 40/32 GB — so the paper's memory-pressure structure
//! is preserved exactly: LARGE stand-ins exceed a single device and force
//! batching or multi-device distribution; SMALL stand-ins fit.

use ldgm_gpusim::Platform;
use ldgm_graph::csr::CsrGraph;
use ldgm_graph::gen;
use ldgm_graph::gen::RmatParams;

/// Size group, following the paper's LARGE (> 1 B paper-edges) / SMALL
/// split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Group {
    /// Paper |E| > 1 B: stand-in needs batching or several devices.
    Large,
    /// Paper |E| ≤ 1 B: stand-in fits one device.
    Small,
}

/// Generator recipe for a stand-in.
#[derive(Clone, Copy, Debug)]
pub enum Spec {
    /// Power-law Kronecker.
    Rmat { n: usize, m: usize, params: RmatParams },
    /// Uniform random.
    Urand { n: usize, m: usize },
    /// Web-crawl copy model.
    Web { n: usize, out_degree: usize, copy_p: f64 },
    /// Genomic k-mer chains.
    Kmer { n: usize, avg_degree: f64, chain_len: usize },
    /// Exact Mycielski construction.
    Mycielskian { level: u32 },
    /// Stencil lattice.
    Lattice { side: usize, radius: usize },
    /// Dense modular similarity.
    Similarity { n: usize, blocks: usize, intra_p: f64, background: usize },
}

impl Spec {
    /// Generate the graph with `seed`.
    pub fn build(&self, seed: u64) -> CsrGraph {
        match *self {
            Spec::Rmat { n, m, params } => gen::rmat(n, m, params, seed),
            Spec::Urand { n, m } => gen::urand(n, m, seed),
            Spec::Web { n, out_degree, copy_p } => gen::web(n, out_degree, copy_p, seed),
            Spec::Kmer { n, avg_degree, chain_len } => gen::kmer(n, avg_degree, chain_len, seed),
            Spec::Mycielskian { level } => gen::mycielskian(level, seed),
            Spec::Lattice { side, radius } => gen::lattice(side, side, radius, seed),
            Spec::Similarity { n, blocks, intra_p, background } => {
                gen::similarity(n, blocks, intra_p, background, seed)
            }
        }
    }
}

/// One registry entry.
#[derive(Clone, Copy, Debug)]
pub struct Dataset {
    /// The paper graph this stands in for.
    pub name: &'static str,
    /// LARGE/SMALL group.
    pub group: Group,
    /// Generator recipe.
    pub spec: Spec,
    /// Deterministic seed.
    pub seed: u64,
}

impl Dataset {
    /// Build the stand-in graph.
    pub fn build(&self) -> CsrGraph {
        self.spec.build(self.seed)
    }
}

/// The fourteen performance stand-ins, in the paper's Table I order.
pub fn registry() -> Vec<Dataset> {
    use Group::*;
    vec![
        Dataset {
            name: "AGATHA-2015",
            group: Large,
            // Biomedical co-occurrence: extreme hub skew (paper d_max 12.6M).
            spec: Spec::Rmat { n: 184_000, m: 2_900_000, params: RmatParams::GAP_KRON },
            seed: 101,
        },
        Dataset {
            name: "uk-2007-05",
            group: Large,
            spec: Spec::Web { n: 105_000, out_degree: 16, copy_p: 0.6 },
            seed: 102,
        },
        Dataset {
            name: "webbase-2001",
            group: Large,
            // Much denser rows (paper d_avg 220).
            spec: Spec::Web { n: 30_000, out_degree: 55, copy_p: 0.5 },
            seed: 103,
        },
        Dataset {
            name: "MOLIERE_2016",
            group: Large,
            spec: Spec::Urand { n: 134_000, m: 1_050_000 },
            seed: 104,
        },
        Dataset {
            name: "GAP-urand",
            group: Large,
            spec: Spec::Urand { n: 134_000, m: 1_050_000 },
            seed: 105,
        },
        Dataset {
            name: "GAP-kron",
            group: Large,
            // Slightly above com-Friendster in |E| (as in the paper), and
            // just across the SR-GPU 40 MB boundary.
            spec: Spec::Rmat { n: 118_000, m: 1_060_000, params: RmatParams::GAP_KRON },
            seed: 106,
        },
        Dataset {
            name: "com-Friendster",
            group: Large,
            spec: Spec::Rmat { n: 65_000, m: 900_000, params: RmatParams::SOCIAL },
            seed: 107,
        },
        Dataset {
            name: "Queen_4147",
            group: Small,
            // (2·4+1)²−1 = 80 ≈ paper's d_avg 79.
            spec: Spec::Lattice { side: 64, radius: 4 },
            seed: 108,
        },
        Dataset {
            name: "mycielskian18",
            group: Small,
            // Exact construction, level 12: 3071 vertices, ~204 K edges.
            spec: Spec::Mycielskian { level: 12 },
            seed: 109,
        },
        Dataset {
            name: "HV15R",
            group: Small,
            // (2·6+1)²−1 = 168 ≈ paper's d_avg 140.
            spec: Spec::Lattice { side: 45, radius: 6 },
            seed: 110,
        },
        Dataset {
            name: "com-Orkut",
            group: Small,
            spec: Spec::Rmat { n: 3_000, m: 115_000, params: RmatParams::SOCIAL },
            seed: 111,
        },
        Dataset {
            name: "kmer_U1a",
            group: Small,
            spec: Spec::Kmer { n: 68_000, avg_degree: 4.0, chain_len: 40 },
            seed: 112,
        },
        Dataset {
            name: "kmer_V2a",
            group: Small,
            spec: Spec::Kmer { n: 55_000, avg_degree: 2.0, chain_len: 60 },
            seed: 113,
        },
        Dataset {
            name: "mouse_gene",
            group: Small,
            // Paper: 45 K vertices, d_avg 642 — a density no 1000×-scaled
            // vertex count can carry; scaled ~50× in |E| instead
            // (documented deviation).
            spec: Spec::Similarity { n: 2_000, blocks: 6, intra_p: 0.85, background: 4_000 },
            seed: 114,
        },
    ]
}

/// Fetch a registry entry by paper name; the error leads with the
/// nearest-name guesses (same edit-distance heuristic as the matcher
/// registry) and lists every available dataset so callers can surface it
/// directly.
pub fn by_name(name: &str) -> Result<Dataset, String> {
    registry().into_iter().find(|d| d.name == name).ok_or_else(|| {
        let names: Vec<&str> = registry().iter().map(|d| d.name).collect();
        // Same "did you mean" heuristic as the matcher registry: offer
        // the closest name only when it is a plausible typo.
        let ranked = ldgm_core::nearest_names(name, &names);
        let hint = match ranked.first() {
            Some(best) if ldgm_core::edit_distance(name, best) <= 3 => {
                format!(" — did you mean '{best}'?")
            }
            _ => String::new(),
        };
        format!("no dataset named '{name}'{hint} (available: {})", names.join(", "))
    })
}

/// Quality stand-ins for Table II: the same seven SMALL families at a
/// size the exact Blossom solver (O(n³)) handles in seconds.
pub fn quality_registry() -> Vec<Dataset> {
    use Group::*;
    vec![
        Dataset {
            name: "Queen_4147",
            group: Small,
            spec: Spec::Lattice { side: 20, radius: 4 },
            seed: 208,
        },
        Dataset {
            name: "mycielskian18",
            group: Small,
            spec: Spec::Mycielskian { level: 9 },
            seed: 209,
        },
        Dataset {
            name: "HV15R",
            group: Small,
            spec: Spec::Lattice { side: 18, radius: 6 },
            seed: 210,
        },
        Dataset {
            name: "com-Orkut",
            group: Small,
            spec: Spec::Rmat { n: 400, m: 15_000, params: RmatParams::SOCIAL },
            seed: 211,
        },
        Dataset {
            name: "kmer_U1a",
            group: Small,
            spec: Spec::Kmer { n: 800, avg_degree: 4.0, chain_len: 40 },
            seed: 212,
        },
        Dataset {
            name: "kmer_V2a",
            group: Small,
            spec: Spec::Kmer { n: 800, avg_degree: 2.0, chain_len: 60 },
            seed: 213,
        },
        Dataset {
            name: "mouse_gene",
            group: Small,
            spec: Spec::Similarity { n: 300, blocks: 4, intra_p: 0.85, background: 600 },
            seed: 214,
        },
    ]
}

/// Scale a platform to the stand-in data scale: device memory divided by
/// 1024 (40 GB → 40 MB on A100, 32 GB → 32 MB on V100), preserving the
/// paper's memory-pressure boundaries, and every fixed overhead (kernel
/// launch, host sync, collective launch, link latency) divided by the
/// same factor so that overhead-to-work ratios match full scale.
pub fn scaled_platform(base: Platform) -> Platform {
    let scaled = base.device.mem_bytes / 1024;
    base.with_device_memory(scaled).with_overheads_scaled(1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::stats::stats;

    #[test]
    fn registry_has_fourteen_entries() {
        assert_eq!(registry().len(), 14);
        assert_eq!(quality_registry().len(), 7);
    }

    #[test]
    fn by_name_finds() {
        assert_eq!(by_name("GAP-kron").unwrap().name, "GAP-kron");
    }

    #[test]
    fn by_name_unknown_lists_available() {
        let err = by_name("nope").unwrap_err();
        assert!(err.contains("no dataset named 'nope'"), "{err}");
        assert!(err.contains("GAP-kron") && err.contains("com-Orkut"), "{err}");
        assert!(!err.contains("did you mean"), "far-off names get no guess: {err}");
    }

    #[test]
    fn by_name_typo_suggests_nearest() {
        let err = by_name("GAP-korn").unwrap_err();
        assert!(err.contains("did you mean 'GAP-kron'?"), "{err}");
    }

    #[test]
    fn small_stand_ins_fit_one_scaled_device_large_do_not() {
        let platform = scaled_platform(Platform::dgx_a100());
        let mem = platform.device.mem_bytes;
        for d in registry() {
            // Use the cheap structural proxy: single-batch footprint
            // 2×CSR + 2|V| words.
            let g = match d.group {
                Group::Small => d.build(),
                Group::Large if d.name == "com-Friendster" => d.build(),
                _ => continue, // building every LARGE graph here is slow
            };
            let footprint = 2 * g.csr_bytes() + 16 * g.num_vertices() as u64;
            match d.group {
                Group::Small => {
                    assert!(footprint <= mem, "{} should fit: {footprint} vs {mem}", d.name)
                }
                Group::Large => {
                    assert!(footprint > mem, "{} should overflow: {footprint} vs {mem}", d.name)
                }
            }
        }
    }

    #[test]
    fn stand_in_degree_characters() {
        let queen = by_name("Queen_4147").unwrap().build();
        let s = stats(&queen);
        assert_eq!(s.d_max, 80);
        let kmer = by_name("kmer_V2a").unwrap().build();
        assert!(stats(&kmer).d_avg < 3.0);
    }

    #[test]
    fn quality_instances_are_blossom_sized() {
        for d in quality_registry() {
            let g = d.build();
            assert!(g.num_vertices() <= 1000, "{}: {} vertices", d.name, g.num_vertices());
        }
    }

    #[test]
    fn scaled_platform_divides_memory() {
        let p = scaled_platform(Platform::dgx_a100());
        assert_eq!(p.device.mem_bytes, 40 * (1 << 20));
    }
}

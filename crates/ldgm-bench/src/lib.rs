//! # ldgm-bench — evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! (§IV) against the synthetic stand-in datasets:
//!
//! * [`datasets`] — the registry of fourteen scaled stand-ins (plus the
//!   Blossom-sized quality instances) and the memory-scaled platforms;
//! * [`runner`] — timing and LD-GPU configuration-sweep helpers;
//! * [`table`] — aligned text-table rendering;
//! * [`exp`] — one module per experiment (`table1`..`table6`,
//!   `fig4`..`fig11`), each with a same-named binary, plus `repro_all`.
//!
//! ```bash
//! cargo run --release -p ldgm-bench --bin table1
//! cargo run --release -p ldgm-bench --bin repro_all   # everything -> target/repro/
//! ```

pub mod datasets;
pub mod exp;
pub mod runner;
pub mod table;

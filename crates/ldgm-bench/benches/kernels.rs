//! Micro-benchmarks of the LD-GPU kernels (host execution): SETPOINTERS
//! across densities and SETMATES.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ldgm_core::ld_gpu::{set_mates, set_pointers_batch};
use ldgm_gpusim::NONE_SENTINEL;
use ldgm_graph::gen::{rmat, urand, RmatParams};
use ldgm_part::Partition;

fn bench_set_pointers(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_pointers");
    group.sample_size(20);
    for (name, g) in [
        ("urand_sparse", urand(20_000, 80_000, 1)),
        ("urand_dense", urand(20_000, 400_000, 1)),
        ("rmat_skewed", rmat(1 << 14, 200_000, RmatParams::GAP_KRON, 1)),
    ] {
        let part = Partition::edge_balanced(&g, 1).parts[0];
        let avail = vec![1u8; g.num_vertices()];
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut pointers = vec![NONE_SENTINEL; g.num_vertices()];
                let mut retired = vec![0u8; g.num_vertices()];
                black_box(set_pointers_batch(
                    &g,
                    &part,
                    &avail,
                    &mut pointers,
                    &mut retired,
                    8,
                    true,
                ))
            })
        });
    }
    group.finish();
}

fn bench_set_mates(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_mates");
    group.sample_size(20);
    for n in [10_000usize, 100_000] {
        // Pointers forming mutual pairs (i <-> i+1).
        let pointers: Vec<u64> =
            (0..n as u64).map(|u| if u % 2 == 0 { u + 1 } else { u - 1 }).collect();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let mut mate = vec![NONE_SENTINEL; n];
                let mut avail = vec![1u8; n];
                black_box(set_mates(&pointers, &mut mate, &mut avail))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_set_pointers, bench_set_mates);
criterion_main!(benches);

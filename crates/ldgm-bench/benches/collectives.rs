//! Collective machinery: the host-side exact reduction and the analytical
//! cost models (evaluated millions of times during sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ldgm_gpusim::{allreduce_max_merge, CommModel, Link, NONE_SENTINEL};

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_max_merge");
    group.sample_size(20);
    for n in [10_000usize, 100_000] {
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                // Four devices, disjoint quarters.
                let mut arrays: Vec<Vec<u64>> = (0..4)
                    .map(|d| {
                        (0..n).map(|i| if i % 4 == d { i as u64 } else { NONE_SENTINEL }).collect()
                    })
                    .collect();
                let mut refs: Vec<&mut [u64]> =
                    arrays.iter_mut().map(|a| a.as_mut_slice()).collect();
                allreduce_max_merge(&mut refs);
                black_box(arrays)
            })
        });
    }
    group.finish();
}

fn bench_cost_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_cost_model");
    let nccl = CommModel::nccl();
    let mpi = CommModel::mpi_staged();
    group.bench_function("nccl_8dev", |b| {
        b.iter(|| black_box(nccl.allreduce_time(&Link::NVLINK_SXM4, 8, 1 << 20)))
    });
    group.bench_function("mpi_8dev", |b| {
        b.iter(|| black_box(mpi.allreduce_time(&Link::NVLINK_SXM4, 8, 1 << 20)))
    });
    group.finish();
}

criterion_group!(benches, bench_merge, bench_cost_models);
criterion_main!(benches);

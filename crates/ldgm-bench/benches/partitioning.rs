//! Partitioning and batching throughput: the §III-A/B data-distribution
//! machinery must be negligible next to matching itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ldgm_graph::gen::{rmat, web, RmatParams};
use ldgm_part::{make_batches, min_batches_to_fit, Partition};

fn bench_partition(c: &mut Criterion) {
    let g = rmat(1 << 16, 600_000, RmatParams::GAP_KRON, 1);
    let mut group = c.benchmark_group("edge_balanced_partition");
    group.sample_size(30);
    for parts in [2usize, 8, 16] {
        group.bench_function(BenchmarkId::from_parameter(parts), |b| {
            b.iter(|| black_box(Partition::edge_balanced(&g, parts)))
        });
    }
    group.finish();
}

fn bench_batches(c: &mut Criterion) {
    let g = web(50_000, 12, 0.5, 2);
    let p = Partition::edge_balanced(&g, 4);
    let mut group = c.benchmark_group("batch_formation");
    group.sample_size(30);
    for nb in [2usize, 10] {
        group.bench_function(BenchmarkId::from_parameter(nb), |b| {
            b.iter(|| {
                for part in &p.parts {
                    black_box(make_batches(&g, part, nb));
                }
            })
        });
    }
    group.bench_function("min_batches_to_fit", |b| {
        b.iter(|| {
            for part in &p.parts {
                black_box(min_batches_to_fit(&g, part, g.num_vertices(), 1 << 21, 1));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partition, bench_batches);
criterion_main!(benches);

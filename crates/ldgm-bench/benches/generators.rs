//! Generator throughput for every dataset family.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ldgm_graph::gen;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_100k_edges");
    group.sample_size(10);
    group.bench_function("rmat", |b| {
        b.iter(|| black_box(gen::rmat(1 << 14, 100_000, gen::RmatParams::GAP_KRON, 1)))
    });
    group.bench_function("urand", |b| b.iter(|| black_box(gen::urand(1 << 14, 100_000, 1))));
    group.bench_function("web", |b| b.iter(|| black_box(gen::web(12_000, 8, 0.5, 1))));
    group.bench_function("kmer", |b| b.iter(|| black_box(gen::kmer(50_000, 4.0, 40, 1))));
    group.bench_function("lattice", |b| b.iter(|| black_box(gen::lattice(110, 110, 4, 1))));
    group.bench_function("mycielskian", |b| b.iter(|| black_box(gen::mycielskian(11, 1))));
    group.bench_function("geometric", |b| b.iter(|| black_box(gen::geometric(20_000, 0.015, 1))));
    group.bench_function("similarity", |b| {
        b.iter(|| black_box(gen::similarity(1200, 6, 0.8, 2000, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);

//! Ablations of the design choices DESIGN.md calls out:
//!
//! * batching granularity — batch-transfer cost vs working-set balance;
//! * collective model — NCCL ring vs MPI-staged end-to-end;
//! * tie-breaking — paper's quantized (tie-heavy) weights vs perturbed
//!   distinct weights;
//! * warp scheduling — vertices-per-warp (the SR-GPU §IV-D discussion).
//!
//! Measured quantity is host wall-clock of the full simulated run; the
//! simulated times are reported per run by the table/fig binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_core::ld_seq::ld_seq;
use ldgm_gpusim::{CommModel, Platform};
use ldgm_graph::gen::{rmat, RmatParams};
use ldgm_graph::weights::make_weights_distinct;

fn bench_batch_granularity(c: &mut Criterion) {
    let g = rmat(1 << 14, 150_000, RmatParams::SOCIAL, 7);
    let mut group = c.benchmark_group("ablation_batches");
    group.sample_size(10);
    for nb in [1usize, 3, 10] {
        group.bench_function(BenchmarkId::from_parameter(nb), |b| {
            b.iter(|| {
                black_box(
                    LdGpu::new(
                        LdGpuConfig::new(Platform::dgx_a100())
                            .devices(4)
                            .batches(nb)
                            .without_iteration_profile(),
                    )
                    .run(&g),
                )
            })
        });
    }
    group.finish();
}

fn bench_comm_models(c: &mut Criterion) {
    let g = rmat(1 << 14, 150_000, RmatParams::SOCIAL, 8);
    let mut group = c.benchmark_group("ablation_comm_model");
    group.sample_size(10);
    for (name, comm) in [("nccl", CommModel::nccl()), ("mpi", CommModel::mpi_staged())] {
        let platform = Platform::dgx_a100().with_comm(comm);
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    LdGpu::new(
                        LdGpuConfig::new(platform.clone()).devices(4).without_iteration_profile(),
                    )
                    .run(&g),
                )
            })
        });
    }
    group.finish();
}

fn bench_tiebreak_regimes(c: &mut Criterion) {
    let quantized = rmat(1 << 14, 150_000, RmatParams::SOCIAL, 9);
    let distinct = make_weights_distinct(&quantized, 9);
    let mut group = c.benchmark_group("ablation_tiebreak");
    group.sample_size(10);
    group.bench_function("quantized_weights", |b| b.iter(|| black_box(ld_seq(&quantized))));
    group.bench_function("distinct_weights", |b| b.iter(|| black_box(ld_seq(&distinct))));
    group.finish();
}

fn bench_vertices_per_warp(c: &mut Criterion) {
    let g = rmat(1 << 14, 150_000, RmatParams::GAP_KRON, 10);
    let mut group = c.benchmark_group("ablation_vertices_per_warp");
    group.sample_size(10);
    for vpw in [1usize, 8, 64] {
        group.bench_function(BenchmarkId::from_parameter(vpw), |b| {
            b.iter(|| {
                black_box(
                    LdGpu::new(
                        LdGpuConfig::new(Platform::dgx_a100())
                            .devices(2)
                            .vertices_per_warp(vpw)
                            .without_iteration_profile(),
                    )
                    .run(&g),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_granularity,
    bench_comm_models,
    bench_tiebreak_regimes,
    bench_vertices_per_warp
);
criterion_main!(benches);

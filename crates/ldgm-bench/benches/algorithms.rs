//! End-to-end matcher comparison on the host: the sequential/parallel
//! baselines and the simulated LD-GPU driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ldgm_core::greedy::greedy;
use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_core::ld_seq::ld_seq;
use ldgm_core::local_max::local_max;
use ldgm_core::suitor::suitor;
use ldgm_core::suitor_par::suitor_par;
use ldgm_gpusim::Platform;
use ldgm_graph::gen::{rmat, RmatParams};

fn bench_algorithms(c: &mut Criterion) {
    let g = rmat(1 << 14, 150_000, RmatParams::SOCIAL, 3);
    let mut group = c.benchmark_group("matchers");
    group.sample_size(10);
    group.bench_function("ld_seq", |b| b.iter(|| black_box(ld_seq(&g))));
    group.bench_function("local_max", |b| b.iter(|| black_box(local_max(&g))));
    group.bench_function("greedy", |b| b.iter(|| black_box(greedy(&g))));
    group.bench_function("suitor", |b| b.iter(|| black_box(suitor(&g))));
    group.bench_function("suitor_par", |b| b.iter(|| black_box(suitor_par(&g))));
    group.bench_function("ld_gpu_driver_4dev", |b| {
        b.iter(|| {
            black_box(
                LdGpu::new(
                    LdGpuConfig::new(Platform::dgx_a100()).devices(4).without_iteration_profile(),
                )
                .run(&g),
            )
        })
    });
    group.finish();
}

fn bench_ld_gpu_scaling(c: &mut Criterion) {
    let g = rmat(1 << 15, 300_000, RmatParams::SOCIAL, 5);
    let mut group = c.benchmark_group("ld_gpu_host_cost_by_devices");
    group.sample_size(10);
    for nd in [1usize, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(nd), |b| {
            b.iter(|| {
                black_box(
                    LdGpu::new(
                        LdGpuConfig::new(Platform::dgx_a100())
                            .devices(nd)
                            .without_iteration_profile(),
                    )
                    .run(&g),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_ld_gpu_scaling);
criterion_main!(benches);

//! Coalescer correctness properties.
//!
//! 1. **Batching invariance** (proptest): any interleaving of client
//!    update streams, admitted through the service and coalesced at an
//!    arbitrary target size, commits a matching bit-identical to applying
//!    the same arrival-ordered updates as one offline [`IncrementalLd`]
//!    stream. This is the canonical-uniqueness argument made executable:
//!    the committed matching is a pure function of the folded graph
//!    state, and the coalescer preserves the fold order.
//! 2. **Snapshot consistency** (threaded): readers racing an in-flight
//!    batch only ever observe *committed* snapshots — every observed mate
//!    array is exactly the one the writer committed at that epoch, never
//!    a half-applied mixture.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use ldgm_dyn::{DynConfig, EdgeUpdate, IncrementalLd};
use ldgm_gpusim::Platform;
use ldgm_graph::gen::urand;
use ldgm_serve::{MatchService, ServeConfig, UNMATCHED};

fn dyn_cfg() -> DynConfig {
    DynConfig::builder(Platform::dgx_a100()).devices(2).build().unwrap()
}

/// Raw op: (client, a, b, weight‰, kind) over an n-vertex graph; a kind
/// below 4 decodes as a delete, the rest as inserts/reweights.
type RawOp = (u8, u32, u32, u32, u8);

fn decode(ops: &[RawOp], n: u32) -> Vec<(String, EdgeUpdate)> {
    ops.iter()
        .filter_map(|&(client, a, b, w, kind)| {
            let (u, v) = (a % n, b % n);
            if u == v {
                return None;
            }
            let upd = if kind < 4 {
                EdgeUpdate::Delete { u, v }
            } else {
                EdgeUpdate::Insert { u, v, w: w as f64 / 1000.0 }
            };
            Some((format!("client-{}", client % 4), upd))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_interleaving_coalesced_equals_one_offline_stream(
        graph_seed in 0u64..1000,
        target in 1usize..24,
        ops in proptest::collection::vec(
            (0u8..4, 0u32..u32::MAX, 0u32..u32::MAX, 1u32..=1000, 0u8..10),
            1..80,
        ),
    ) {
        let n = 50u32;
        let g = urand(n as usize, 170, graph_seed);
        let stream = decode(&ops, n);

        // Live path: per-client submissions in arrival order, coalesced
        // at an arbitrary target (deadline/admission out of the way).
        let svc = MatchService::new(
            "prop",
            g.clone(),
            dyn_cfg(),
            ServeConfig {
                coalesce_target: target,
                deadline: Duration::from_secs(3600),
                max_pending_per_tenant: usize::MAX,
            },
        );
        for (tenant, upd) in &stream {
            svc.submit(tenant, &[*upd]).unwrap();
        }
        svc.flush();

        // Offline path: the same arrival order as one engine stream.
        let mut offline = IncrementalLd::new(g, dyn_cfg());
        let batch: Vec<EdgeUpdate> = stream.iter().map(|(_, u)| *u).collect();
        if !batch.is_empty() {
            offline.apply_batch(&batch);
        }

        let snap = svc.snapshot();
        prop_assert_eq!(snap.mate.as_slice(), offline.mate_array());
        prop_assert!((snap.weight - offline.matched_weight()).abs() < 1e-9);
        prop_assert_eq!(snap.cardinality, offline.cardinality());
        // And the service's own offline replay agrees with itself.
        prop_assert_eq!(svc.replay_check(), Ok(()));
    }
}

#[test]
fn concurrent_reads_only_observe_committed_snapshots() {
    let n = 150usize;
    let g = urand(n, 600, 17);
    let svc = Arc::new(MatchService::new(
        "threaded",
        g,
        dyn_cfg(),
        ServeConfig {
            coalesce_target: 8,
            deadline: Duration::from_secs(3600),
            max_pending_per_tenant: usize::MAX,
        },
    ));
    // Every snapshot the writer commits, by epoch. Epoch 0 is the seed.
    let committed: Arc<Mutex<BTreeMap<u64, Vec<u32>>>> = Arc::new(Mutex::new(BTreeMap::new()));
    committed.lock().unwrap().insert(0, svc.snapshot().mate.clone());
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let svc = svc.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut observed: Vec<(u64, Vec<u32>)> = Vec::new();
                let mut last_epoch = 0u64;
                // Check `stop` only after each observation so every reader
                // records at least one snapshot even if the writer finishes
                // before this thread is first scheduled.
                loop {
                    let s = svc.snapshot();
                    // Epochs only move forward for any single reader.
                    assert!(s.epoch >= last_epoch, "epoch went backwards");
                    last_epoch = s.epoch;
                    // A mate array is an involution: a half-applied batch
                    // (some entries old, some new) would break pairing.
                    for (v, &m) in s.mate.iter().enumerate() {
                        if m != UNMATCHED {
                            assert_eq!(
                                s.mate[m as usize], v as u32,
                                "snapshot at epoch {} is not a valid matching",
                                s.epoch
                            );
                        }
                    }
                    observed.push((s.epoch, s.mate.clone()));
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                }
                observed
            })
        })
        .collect();

    // Writer: 40 batches of 8 seeded random updates, flushed by the
    // coalesce target; record each committed mate array by epoch.
    let mut rng = ldgm_graph::Xoshiro256::seed_from_u64(23);
    for _ in 0..40 {
        for _ in 0..8 {
            let u = rng.below(n as u64) as u32;
            let v = rng.below(n as u64) as u32;
            if u == v {
                continue;
            }
            let upd = if rng.chance(0.4) {
                EdgeUpdate::Delete { u, v }
            } else {
                EdgeUpdate::Insert { u, v, w: 0.1 + rng.next_f64() }
            };
            svc.submit("writer", &[upd]).unwrap();
        }
        svc.flush();
        let snap = svc.snapshot();
        committed.lock().unwrap().insert(snap.epoch, snap.mate.clone());
    }
    stop.store(true, Ordering::SeqCst);

    let committed = committed.lock().unwrap();
    assert!(committed.len() > 10, "writer must have committed many epochs");
    let mut checked = 0usize;
    for r in readers {
        for (epoch, mate) in r.join().unwrap() {
            let want = committed
                .get(&epoch)
                .unwrap_or_else(|| panic!("observed epoch {epoch} was never committed"));
            assert_eq!(&mate, want, "observed snapshot differs from the committed one");
            checked += 1;
        }
    }
    assert!(checked > 0, "readers must have observed snapshots");
    svc.replay_check().unwrap();
}

//! Threaded soak: 64 concurrent connections hammer the reactor with
//! interleaved updates and point queries, and the shutdown-time offline
//! replay check must still report a bit-identical matching — i.e. the
//! event loops, shard routing, and coalescer preserved every tenant's
//! arrival order under real socket concurrency.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use ldgm_dyn::DynConfig;
use ldgm_gpusim::json::{self, Json};
use ldgm_gpusim::Platform;
use ldgm_graph::gen::urand;
use ldgm_serve::{serve, MatchService, ServeConfig};

const CONNS: usize = 64;
const UPDATES_PER_CONN: usize = 6;
const N: u32 = 300;

struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { reader, stream }
    }

    fn send(&mut self, line: &str) -> Json {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        let mut resp = String::new();
        self.reader.read_line(&mut resp).unwrap();
        json::parse(resp.trim()).unwrap()
    }
}

#[test]
fn sixty_four_connection_soak_stays_replay_identical() {
    let g = urand(N as usize, 1200, 17);
    let cfg = DynConfig::builder(Platform::dgx_a100()).devices(2).build().unwrap();
    let service = Arc::new(MatchService::new(
        "g",
        g,
        cfg,
        ServeConfig {
            coalesce_target: 48,
            deadline: Duration::from_millis(5),
            max_pending_per_tenant: 256,
        },
    ));
    let handle = serve(vec![service], "127.0.0.1:0", 2).unwrap();
    let addr = handle.addr;

    let joins: Vec<_> = (0..CONNS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let hello = client.send(&format!(r#"{{"op":"hello","tenant":"soak-{c}"}}"#));
                assert_eq!(hello.get("ok").and_then(Json::as_bool), Some(true), "conn {c}");
                for i in 0..UPDATES_PER_CONN {
                    let u = ((c * 5 + i * 3) as u32) % N;
                    let v = (u + 1 + ((c + i) as u32 % (N - 1))) % N;
                    let line = if (c + i) % 5 == 0 {
                        format!(r#"{{"op":"update","kind":"delete","u":{u},"v":{v}}}"#)
                    } else {
                        let w = 1.0 + ((c * 31 + i * 7) % 97) as f64;
                        format!(r#"{{"op":"update","kind":"insert","u":{u},"v":{v},"w":{w:.1}}}"#)
                    };
                    let ack = client.send(&line);
                    // Either admitted or (under pathological timing)
                    // admission-controlled; both keep replay identity.
                    let ok = ack.get("ok").and_then(Json::as_bool) == Some(true);
                    let throttled = ack.get("code").and_then(Json::as_f64) == Some(429.0);
                    assert!(ok || throttled, "conn {c} update {i}: {ack:?}");

                    let q = (u + i as u32) % N;
                    let mate = client.send(&format!(r#"{{"op":"mate","v":{q}}}"#));
                    assert_eq!(
                        mate.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "conn {c} query {i}"
                    );
                }
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }

    // One last connection inspects the transport and stops the server.
    let mut closer = Client::connect(addr);
    let stats = closer.send(r#"{"op":"stats"}"#);
    let server = stats.get("server").expect("server transport object");
    assert_eq!(server.get("io").and_then(Json::as_str), Some("reactor"));
    assert!(
        server.get("accepted").and_then(Json::as_f64).unwrap() >= (CONNS + 1) as f64,
        "every soak connection must have been accepted"
    );
    assert!(
        server.get("requests").and_then(Json::as_f64).unwrap()
            >= (CONNS * 2 * UPDATES_PER_CONN) as f64
    );

    let bye = closer.send(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("stopping").and_then(Json::as_bool), Some(true));
    assert_eq!(
        bye.get("replay_identical").and_then(Json::as_bool),
        Some(true),
        "64-connection soak must stay bit-identical to the offline replay: {bye:?}"
    );
    handle.join();
}

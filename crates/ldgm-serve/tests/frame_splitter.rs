//! Frame-splitter properties.
//!
//! The reactor feeds the [`FrameSplitter`] whatever byte chunks the
//! kernel hands it, so the splitter must be **chunking-invariant**: for
//! any stream of newline-terminated frames and any partition of that
//! stream into read-sized pieces, draining the splitter after every push
//! must yield exactly the original frames, in order — with frames over
//! the cap surfacing as [`SplitFrame::TooLarge`] exactly once each and
//! never corrupting their neighbors.

use proptest::prelude::*;

use ldgm_serve::{FrameSplitter, SplitFrame};

const CAP: usize = 150;

/// What the property expects per input frame.
#[derive(Debug, PartialEq)]
enum Expected {
    Line(Vec<u8>),
    TooLarge,
}

/// Feed `stream` into a fresh splitter in `chunks`-sized pieces,
/// draining after every push (exactly the reactor's read loop).
fn split_all(stream: &[u8], chunks: &[usize]) -> Vec<Expected> {
    let mut s = FrameSplitter::new(CAP);
    let mut got = Vec::new();
    let mut drain = |s: &mut FrameSplitter| {
        while let Some(item) = s.next() {
            got.push(match item {
                SplitFrame::Line(r) => {
                    let bytes = s.slice(r).to_vec();
                    Expected::Line(bytes)
                }
                SplitFrame::TooLarge { len } => {
                    assert!(len > CAP, "TooLarge must only fire past the cap, got {len}");
                    Expected::TooLarge
                }
            });
        }
    };
    let mut pos = 0;
    for &c in chunks {
        if pos >= stream.len() {
            break;
        }
        let end = (pos + c.max(1)).min(stream.len());
        s.push(&stream[pos..end]);
        pos = end;
        drain(&mut s);
    }
    if pos < stream.len() {
        s.push(&stream[pos..]);
        drain(&mut s);
    }
    assert_eq!(s.pending_len(), 0, "a newline-terminated stream must drain fully");
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_chunking_reassembles_identical_frames(
        frames in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..(2 * CAP)),
            0..24,
        ),
        chunks in proptest::collection::vec(1usize..64, 0..256),
    ) {
        // Newlines are the frame delimiter; frame bodies cannot contain
        // them (the wire protocol is line-delimited JSON).
        let frames: Vec<Vec<u8>> = frames
            .into_iter()
            .map(|f| f.into_iter().map(|b| if b == b'\n' { b' ' } else { b }).collect())
            .collect();
        let mut stream = Vec::new();
        let mut want = Vec::new();
        for f in &frames {
            stream.extend_from_slice(f);
            stream.push(b'\n');
            want.push(if f.len() > CAP {
                Expected::TooLarge
            } else {
                Expected::Line(f.clone())
            });
        }

        let got = split_all(&stream, &chunks);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn single_push_equals_byte_at_a_time(
        frames in proptest::collection::vec(
            proptest::collection::vec(0x20u8..0x7f, 0..(CAP + 40)),
            1..12,
        ),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(f);
            stream.push(b'\n');
        }
        let whole = split_all(&stream, &[stream.len()]);
        let trickled = split_all(&stream, &vec![1; stream.len()]);
        prop_assert_eq!(whole, trickled);
    }
}

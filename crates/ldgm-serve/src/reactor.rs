//! The epoll reactor: a small number of event-loop threads serving
//! thousands of connections.
//!
//! ## Architecture
//!
//! `reactor_threads` shard threads each own one [`epoll_shim::Poller`]
//! (raw epoll on Linux, `poll(2)` elsewhere), a pipe [`Waker`], and the
//! set of connections routed to them. Shard 0 additionally owns the
//! non-blocking listener and deals accepted connections round-robin:
//! local ones register directly, remote ones go through the target
//! shard's inbox + waker. A connection lives on one shard for its whole
//! lifetime, so requests on it are processed in order (the protocol's
//! promise) without any cross-thread handoff.
//!
//! ## Per-connection state machine
//!
//! Each connection owns a reusable [`FrameSplitter`] (incremental
//! newline framing with an oversize cap) and a reusable send buffer.
//! Readiness drives it:
//!
//! - **readable** → drain the socket into the splitter, handle every
//!   complete frame, append responses to the send buffer, then flush the
//!   whole buffer with as few `write` syscalls as possible (many queued
//!   responses per syscall — the batched-flush analog of the kernels'
//!   coalescing).
//! - **write interest is armed only while the send buffer is non-empty**
//!   (a flush hit `WouldBlock`, counted as a backpressure stall); once
//!   the buffer drains it is disarmed again.
//! - a send buffer past the high watermark pauses reads on that
//!   connection until the peer drains it — per-connection backpressure
//!   instead of unbounded buffering.
//!
//! ## Sharded read path
//!
//! `mate` answers from the service's `Arc`-swapped committed snapshot:
//! no service lock is crossed. Per-tenant query accounting is kept
//! connection-local and merged via [`MatchService::credit_queries`] on
//! close/`hello`/`stats`/`shutdown`, so the hot path touches no shared
//! mutex either. Hot responses are serialized by [`wire`] straight into
//! the send buffer — no `Json` tree, no `String`, no allocation.
//!
//! ## Subscriptions off the hot path
//!
//! `subscribe` sinks never write sockets from the flushing thread.
//! A sink pushes the event onto the owning shard's notifier queue and
//! wakes it; the shard serializes the event into the connection's send
//! buffer on its own thread, preserving the single-writer invariant.
//!
//! ## Robustness
//!
//! A malformed frame (bad UTF-8, bad JSON, unknown op) answers `400`;
//! an oversized frame answers `413` with [`ERR_FRAME_TOO_LARGE`] and
//! resynchronizes at the next newline; a panicking handler answers
//! `500`. All three keep the connection alive. Responses are appended
//! only after the handler returns, so a panic can never leave a
//! half-written frame in the send buffer.
//!
//! [`ERR_FRAME_TOO_LARGE`]: crate::protocol::ERR_FRAME_TOO_LARGE

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use epoll_shim::{Event, Interest, Poller, Waker};
use ldgm_gpusim::json::Json;
use parking_lot::Mutex;

use crate::protocol::{
    err_response, frame_too_large_response, ok_response, wire, FrameSplitter, ParsedRequest,
    Request, SplitFrame,
};
use crate::server::{
    info_response, resolve_idx, shutdown_response, stats_response, ServerStats, ShardSnapshot,
};
use crate::service::{MatchService, MateChange, Snapshot, UNMATCHED};

/// Reserved poller token of the shard's waker pipe.
const TOKEN_WAKER: u64 = 0;
/// Reserved poller token of the listener (shard 0 only).
const TOKEN_LISTENER: u64 = 1;
/// First token handed to a connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Pause reading a connection whose send buffer exceeds this many bytes
/// until the peer drains it (per-connection backpressure).
const HIGH_WATERMARK: usize = 1 << 20;
/// A send buffer past this size means the peer stopped reading for good:
/// the connection is dropped rather than buffering without bound.
const MAX_SEND_BUFFER: usize = 64 << 20;

/// A queued `mate-change` event bound for a connection on this shard.
struct Notice {
    token: u64,
    dataset: String,
    change: MateChange,
}

/// The cross-thread face of one shard: its waker plus the two queues
/// other threads may touch (new connections, subscription notices) and
/// its public counters.
pub(crate) struct ShardHandle {
    waker: Waker,
    inbox: Mutex<Vec<TcpStream>>,
    notices: Mutex<Vec<Notice>>,
    /// Live connections on this shard.
    pub(crate) connections: AtomicUsize,
    /// Requests handled by this shard.
    pub(crate) requests: AtomicU64,
}

impl ShardHandle {
    fn new() -> std::io::Result<ShardHandle> {
        Ok(ShardHandle {
            waker: Waker::new()?,
            inbox: Mutex::new(Vec::new()),
            notices: Mutex::new(Vec::new()),
            connections: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
        })
    }

    /// Interrupt this shard's poll wait.
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    /// Counter snapshot for the `stats` op.
    pub(crate) fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
        }
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    splitter: FrameSplitter,
    /// Queued response bytes; `wpos..` is still unsent.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Interest currently armed with the poller.
    interest: Interest,
    /// Billing id (peer address until `hello` renames it).
    tenant: String,
    /// Cleared on close so subscription sinks stop delivering.
    alive: Arc<AtomicBool>,
    /// Connection-local query counts, one slot per dataset.
    queries: Vec<u64>,
}

impl Conn {
    fn unsent(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// What a handler produced; appended to the send buffer only after the
/// handler returned, so panics never corrupt the stream.
enum Reply {
    /// Hot `mate` response (fast serializer).
    Mate { v: u32, mate: Option<u32>, epoch: u64 },
    /// Hot update/update-batch ack (fast serializer).
    Ack { admitted: u64, pending: u64, flushed: bool },
    /// Anything else (cold path, `Json` tree).
    Tree(Json),
}

/// Outcome of flushing a connection's send buffer.
#[derive(PartialEq, Eq)]
enum FlushState {
    /// Buffer fully drained.
    Drained,
    /// Socket would block; write interest must stay armed.
    Blocked,
    /// Peer is gone (or buffered beyond [`MAX_SEND_BUFFER`]).
    Dead,
}

/// Everything one shard thread owns.
pub(crate) struct Reactor {
    idx: usize,
    poller: Poller,
    shard: Arc<ShardHandle>,
    shards: Vec<Arc<ShardHandle>>,
    services: Arc<Vec<Arc<MatchService>>>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    next_shard: usize,
    /// Reusable socket read scratch.
    scratch: Vec<u8>,
    /// Reusable copy of the frame being handled (the splitter's buffer
    /// may move while the handler appends to the same connection).
    frame: Vec<u8>,
    max_frame: usize,
}

/// What [`spawn_shards`] hands back: the shards' cross-thread handles
/// plus their thread join handles.
pub(crate) type SpawnedShards = (Vec<Arc<ShardHandle>>, Vec<std::thread::JoinHandle<()>>);

/// Spawn the shard threads. `shards[0]` owns `listener`.
pub(crate) fn spawn_shards(
    listener: TcpListener,
    services: Arc<Vec<Arc<MatchService>>>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    threads: usize,
    max_frame: usize,
) -> std::io::Result<SpawnedShards> {
    listener.set_nonblocking(true)?;
    let shards: Vec<Arc<ShardHandle>> =
        (0..threads).map(|_| ShardHandle::new().map(Arc::new)).collect::<std::io::Result<_>>()?;
    let mut joins = Vec::with_capacity(threads);
    for (idx, shard) in shards.iter().enumerate() {
        let poller = Poller::new()?;
        poller.add(shard.waker.fd(), TOKEN_WAKER, Interest::READ)?;
        let listener = if idx == 0 {
            // Register the clone that the reactor will own: the original
            // drops when this function returns, and a closed fd silently
            // vanishes from its epoll set.
            let l = listener.try_clone()?;
            poller.add(l.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
            Some(l)
        } else {
            None
        };
        let mut reactor = Reactor {
            idx,
            poller,
            shard: shard.clone(),
            shards: shards.clone(),
            services: services.clone(),
            stats: stats.clone(),
            stop: stop.clone(),
            listener,
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            next_shard: 0,
            scratch: vec![0u8; 64 * 1024],
            frame: Vec::new(),
            max_frame,
        };
        joins.push(std::thread::spawn(move || reactor.run()));
    }
    Ok((shards, joins))
}

impl Reactor {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(256);
        loop {
            events.clear();
            // The waker covers every cross-thread signal; the timeout is
            // only a safety net against a lost wakeup.
            if self.poller.wait(&mut events, 200).is_err() {
                break;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_WAKER => self.shard.waker.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_ready(token, ev),
                }
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            self.adopt_inbox();
            self.deliver_notices();
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        self.finalize();
    }

    /// Accept every pending connection and deal it to a shard.
    fn accept_ready(&mut self) {
        let Some(listener) = self.listener.take() else { return };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    let target = self.next_shard;
                    self.next_shard = (self.next_shard + 1) % self.shards.len();
                    if target == self.idx {
                        self.register(stream);
                    } else {
                        self.shards[target].inbox.lock().push(stream);
                        self.shards[target].wake();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        self.listener = Some(listener);
    }

    /// Register connections other shards routed to us.
    fn adopt_inbox(&mut self) {
        loop {
            let Some(stream) = self.shard.inbox.lock().pop() else { return };
            self.register(stream);
        }
    }

    fn register(&mut self, stream: TcpStream) {
        let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
        let token = self.next_token;
        self.next_token += 1;
        if self.poller.add(stream.as_raw_fd(), token, Interest::READ).is_err() {
            return;
        }
        self.conns.insert(
            token,
            Conn {
                stream,
                splitter: FrameSplitter::new(self.max_frame),
                wbuf: Vec::new(),
                wpos: 0,
                interest: Interest::READ,
                tenant: format!("client-{peer}"),
                alive: Arc::new(AtomicBool::new(true)),
                queries: vec![0; self.services.len()],
            },
        );
        self.shard.connections.fetch_add(1, Ordering::Relaxed);
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge a connection's local query counts into its services' stats.
    fn credit_queries(&self, conn: &mut Conn) {
        for (idx, n) in conn.queries.iter_mut().enumerate() {
            if *n > 0 {
                self.services[idx].credit_queries(&conn.tenant, *n);
                *n = 0;
            }
        }
    }

    fn close(&mut self, token: u64, mut conn: Conn) {
        conn.alive.store(false, Ordering::SeqCst);
        self.credit_queries(&mut conn);
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        self.shard.connections.fetch_sub(1, Ordering::Relaxed);
        self.stats.connections.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(!self.conns.contains_key(&token));
    }

    fn conn_ready(&mut self, token: u64, ev: Event) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return; // token raced with a close: stale event
        };
        if ev.writable && self.flush(&mut conn) == FlushState::Dead {
            self.close(token, conn);
            return;
        }
        if ev.readable {
            if let Err(()) = self.read_ready(token, &mut conn) {
                self.close(token, conn);
                return;
            }
        } else if ev.error {
            // Error without readability: nothing left to drain.
            self.close(token, conn);
            return;
        }
        self.update_interest(token, &mut conn);
        self.conns.insert(token, conn);
    }

    /// Drain the socket, handle complete frames, queue responses.
    /// `Err(())` means the connection is finished (EOF or error).
    fn read_ready(&mut self, token: u64, conn: &mut Conn) -> Result<(), ()> {
        let mut eof = false;
        // Per-drain snapshot cache: a run of consecutive fast-path `mate`
        // frames from one connection resolves against one snapshot fetch
        // (they are semantically simultaneous — nothing of this
        // connection's happened between them). Any other op invalidates
        // it, so read-your-writes across an inline flush is preserved.
        let mut snap_cache: Option<Arc<Snapshot>> = None;
        let mut handled: u64 = 0;
        'drain: loop {
            if conn.unsent() > HIGH_WATERMARK {
                break; // backpressure: stop reading until the peer drains
            }
            let n = {
                // `scratch` is only used inside this block; take it so
                // the handler below can borrow `self` freely.
                let mut scratch = std::mem::take(&mut self.scratch);
                let got = conn.stream.read(&mut scratch);
                if let Ok(n) = got {
                    conn.splitter.push(&scratch[..n]);
                }
                self.scratch = scratch;
                match got {
                    Ok(0) => {
                        eof = true;
                        0
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break 'drain,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue 'drain,
                    Err(_) => {
                        eof = true;
                        0
                    }
                }
            };
            while let Some(item) = conn.splitter.next() {
                match item {
                    SplitFrame::Line(range) => {
                        self.frame.clear();
                        let mut frame = std::mem::take(&mut self.frame);
                        frame.extend_from_slice(conn.splitter.slice(range));
                        handled += self.handle_frame(token, &frame, conn, &mut snap_cache);
                        self.frame = frame;
                    }
                    SplitFrame::TooLarge { len } => {
                        let resp = frame_too_large_response(len, self.max_frame);
                        append_json(&mut conn.wbuf, &resp);
                    }
                }
                if self.stop.load(Ordering::SeqCst) {
                    break 'drain; // a shutdown op stops frame processing
                }
            }
            if eof || n == 0 {
                break;
            }
        }
        // One batched counter update and one batched flush for
        // everything this readiness round queued.
        if handled > 0 {
            self.stats.requests.fetch_add(handled, Ordering::Relaxed);
            self.shard.requests.fetch_add(handled, Ordering::Relaxed);
        }
        if self.flush(conn) == FlushState::Dead {
            return Err(());
        }
        if eof {
            // Deliver what we could; the peer is gone.
            return Err(());
        }
        Ok(())
    }

    /// Handle one complete frame, appending the response to `conn.wbuf`.
    /// Returns how many requests this frame counted as (0 for blanks).
    fn handle_frame(
        &mut self,
        token: u64,
        raw: &[u8],
        conn: &mut Conn,
        snap_cache: &mut Option<Arc<Snapshot>>,
    ) -> u64 {
        let line = raw.trim_ascii();
        if line.is_empty() {
            return 0; // blank lines are ignored, like the blocking path
        }

        // Zero-allocation fast path: the canonical compact `mate` frame
        // on the default dataset.
        if let Some(v) = wire::parse_mate_fast(line) {
            let snap = snap_cache.get_or_insert_with(|| self.services[0].snapshot());
            conn.queries[0] += 1;
            if (v as usize) >= snap.mate.len() {
                let resp =
                    err_response(404, format!("vertex {v} out of range (n={})", snap.mate.len()));
                append_json(&mut conn.wbuf, &resp);
            } else {
                wire::mate_response(&mut conn.wbuf, v, snap.mate(v), snap.epoch);
            }
            return 1;
        }
        // Anything that is not a fast-path read may move the matching;
        // later fast-path reads must refetch.
        *snap_cache = None;

        let reply = catch_unwind(AssertUnwindSafe(|| self.handle_slow(token, line, conn)))
            .unwrap_or_else(|_| {
                Reply::Tree(err_response(500, "internal error: request handler panicked"))
            });
        match reply {
            Reply::Mate { v, mate, epoch } => wire::mate_response(&mut conn.wbuf, v, mate, epoch),
            Reply::Ack { admitted, pending, flushed } => {
                wire::update_ack(&mut conn.wbuf, admitted, pending, flushed)
            }
            Reply::Tree(j) => append_json(&mut conn.wbuf, &j),
        }
        1
    }

    /// The full (parse-everything) request path. Side effects happen in
    /// here; the response is appended by the caller after this returns.
    fn handle_slow(&mut self, token: u64, line: &[u8], conn: &mut Conn) -> Reply {
        let Ok(text) = std::str::from_utf8(line) else {
            return Reply::Tree(err_response(400, "frame is not valid UTF-8"));
        };
        let parsed = match ParsedRequest::parse(text) {
            Ok(p) => p,
            Err(e) => return Reply::Tree(err_response(400, e)),
        };
        let sidx = match resolve_idx(&self.services, parsed.dataset.as_deref()) {
            Ok(i) => i,
            Err(resp) => return Reply::Tree(resp),
        };
        let service = &self.services[sidx];
        match parsed.request {
            Request::Hello { tenant } => {
                // Queries made under the old billing id settle first.
                self.credit_queries(conn);
                conn.tenant = tenant;
                Reply::Tree(ok_response().with("tenant", conn.tenant.clone()))
            }
            Request::Mate { v } => {
                let snap = service.snapshot();
                conn.queries[sidx] += 1;
                if (v as usize) >= snap.mate.len() {
                    Reply::Tree(err_response(
                        404,
                        format!("vertex {v} out of range (n={})", snap.mate.len()),
                    ))
                } else {
                    Reply::Mate { v, mate: snap.mate(v), epoch: snap.epoch }
                }
            }
            Request::MatchInfo => Reply::Tree(info_response(service, &self.stats)),
            Request::Update { update } => match service.submit(&conn.tenant, &[update]) {
                Ok(ack) => Reply::Ack {
                    admitted: ack.admitted as u64,
                    pending: ack.pending as u64,
                    flushed: ack.flushed,
                },
                Err(e) => Reply::Tree(err_response(429, e.to_string())),
            },
            Request::UpdateBatch { updates } => match service.submit(&conn.tenant, &updates) {
                Ok(ack) => Reply::Ack {
                    admitted: ack.admitted as u64,
                    pending: ack.pending as u64,
                    flushed: ack.flushed,
                },
                Err(e) => Reply::Tree(err_response(429, e.to_string())),
            },
            Request::Subscribe { v } => {
                if (v as usize) >= service.snapshot().mate.len() {
                    Reply::Tree(err_response(404, format!("vertex {v} out of range")))
                } else {
                    let shard = self.shard.clone();
                    let alive = conn.alive.clone();
                    let dataset = service.name().to_string();
                    // The sink runs on whichever thread flushes; it only
                    // enqueues + wakes, never touches the socket.
                    service.subscribe(
                        v,
                        Box::new(move |c| {
                            if !alive.load(Ordering::SeqCst) {
                                return false;
                            }
                            shard.notices.lock().push(Notice {
                                token,
                                dataset: dataset.clone(),
                                change: *c,
                            });
                            shard.wake();
                            true
                        }),
                    );
                    Reply::Tree(ok_response().with("subscribed", v))
                }
            }
            Request::Flush => match service.flush() {
                Some(f) => Reply::Tree(
                    ok_response()
                        .with("flushed", f.updates)
                        .with("epoch", f.epoch)
                        .with("sim_time", f.sim_time),
                ),
                None => Reply::Tree(ok_response().with("flushed", 0u64)),
            },
            Request::Stats => {
                // Settle this connection's local counts so the caller
                // sees its own queries; other connections settle on
                // close (documented lag).
                self.credit_queries(conn);
                let shards: Vec<ShardSnapshot> = self.shards.iter().map(|s| s.snapshot()).collect();
                Reply::Tree(stats_response(service, &self.stats, &shards))
            }
            Request::Shutdown => {
                self.credit_queries(conn);
                let resp = shutdown_response(&self.services);
                self.stop.store(true, Ordering::SeqCst);
                for shard in &self.shards {
                    shard.wake();
                }
                Reply::Tree(resp)
            }
        }
    }

    /// Deliver queued `mate-change` events into their connections' send
    /// buffers (the only thread that may touch those buffers is us).
    fn deliver_notices(&mut self) {
        let notices = std::mem::take(&mut *self.shard.notices.lock());
        if notices.is_empty() {
            return;
        }
        for n in notices {
            let Some(mut conn) = self.conns.remove(&n.token) else { continue };
            let c = n.change;
            let ev = Json::object()
                .with("event", "mate-change")
                .with("dataset", n.dataset)
                .with("v", c.v)
                .with("old", if c.old == UNMATCHED { Json::Null } else { Json::from(c.old) })
                .with("new", if c.new == UNMATCHED { Json::Null } else { Json::from(c.new) })
                .with("epoch", c.epoch);
            append_json(&mut conn.wbuf, &ev);
            if self.flush(&mut conn) == FlushState::Dead {
                self.close(n.token, conn);
                continue;
            }
            self.update_interest(n.token, &mut conn);
            self.conns.insert(n.token, conn);
        }
    }

    /// Write as much of the send buffer as the socket takes; one syscall
    /// covers every queued response (batched flush).
    fn flush(&mut self, conn: &mut Conn) -> FlushState {
        if conn.unsent() == 0 {
            conn.wbuf.clear();
            conn.wpos = 0;
            return FlushState::Drained;
        }
        if conn.wbuf.len() > MAX_SEND_BUFFER {
            return FlushState::Dead;
        }
        loop {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => return FlushState::Dead,
                Ok(n) => {
                    conn.wpos += n;
                    if conn.wpos == conn.wbuf.len() {
                        conn.wbuf.clear();
                        conn.wpos = 0;
                        return FlushState::Drained;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.stats.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
                    return FlushState::Blocked;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return FlushState::Dead,
            }
        }
    }

    /// Re-arm the poller to match the connection's state: write interest
    /// only while the send buffer is non-empty, reads paused past the
    /// high watermark.
    fn update_interest(&mut self, token: u64, conn: &mut Conn) {
        let want =
            Interest { readable: conn.unsent() <= HIGH_WATERMARK, writable: conn.unsent() > 0 };
        if want != conn.interest && self.poller.modify(conn.stream.as_raw_fd(), token, want).is_ok()
        {
            conn.interest = want;
        }
    }

    /// Stop: settle accounting and push out whatever is still buffered
    /// (briefly blocking, bounded by a write timeout) before closing.
    fn finalize(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let mut conn = self.conns.remove(&token).unwrap();
            if conn.unsent() > 0 {
                let _ = conn.stream.set_nonblocking(false);
                let _ = conn.stream.set_write_timeout(Some(Duration::from_millis(500)));
                let _ = conn.stream.write_all(&conn.wbuf[conn.wpos..]);
            }
            self.close(token, conn);
        }
    }
}

/// Append a compact-serialized `Json` line (cold path; one `String`).
fn append_json(out: &mut Vec<u8>, j: &Json) {
    out.extend_from_slice(j.to_string_compact().as_bytes());
    out.push(b'\n');
}

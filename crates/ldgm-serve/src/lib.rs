//! # ldgm-serve — matching as a service
//!
//! Everything else in this workspace is batch-shaped: an engine runs once
//! and exits. This crate keeps graphs and their locally-dominant matchings
//! *resident* and multiplexes concurrent callers over a minimal TCP layer
//! (blocking `std::net` sockets on a thread pool — no async runtime),
//! speaking a line-delimited JSON protocol.
//!
//! The load-bearing piece is the **update coalescer**
//! ([`service::MatchService`]): concurrent small updates from many clients
//! queue into a pending buffer and flush into one
//! [`ldgm_dyn::IncrementalLd`] batch when the buffer reaches a target size
//! (default 64, the BENCH_dynamic sweet spot) or a deadline elapses. Reads
//! are **snapshot-consistent**: they are served from the last *committed*
//! snapshot (an `Arc`-swapped [`service::Snapshot`]), never from a
//! half-applied batch. Correctness of coalescing follows from canonical
//! uniqueness — the repo-wide total preference order makes the LD matching
//! a pure function of the final graph state, so any batching of an
//! order-preserved update sequence commits the same matching.
//!
//! Modules:
//! - [`protocol`] — typed requests/responses over the hand-rolled
//!   [`ldgm_gpusim::json::Json`] value (the workspace is dependency-free).
//! - [`service`] — the coalescing service core: pending buffer, snapshot
//!   discipline, `subscribe` notifications, per-tenant sim-time billing
//!   with admission control.
//! - [`server`] — the TCP layer: accept loop, worker pool, deadline
//!   flusher, graceful shutdown with an offline replay check.

pub mod protocol;
pub mod server;
pub mod service;

pub use ldgm_core::UNMATCHED;
pub use protocol::{ParsedRequest, Request};
pub use server::{serve, ServerHandle};
pub use service::{
    resolve_dyn_config, AdmissionError, FlushSummary, MatchService, MateChange, ServeConfig,
    ServiceStats, Snapshot, SubmitAck,
};

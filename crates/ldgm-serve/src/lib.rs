//! # ldgm-serve — matching as a service
//!
//! Everything else in this workspace is batch-shaped: an engine runs once
//! and exits. This crate keeps graphs and their locally-dominant matchings
//! *resident* and multiplexes concurrent callers over a minimal TCP layer
//! speaking a line-delimited JSON protocol — no async runtime, no crates.io
//! dependencies.
//!
//! The load-bearing piece is the **update coalescer**
//! ([`service::MatchService`]): concurrent small updates from many clients
//! queue into a pending buffer and flush into one
//! [`ldgm_dyn::IncrementalLd`] batch when the buffer reaches a target size
//! (default 64, the BENCH_dynamic sweet spot) or a deadline elapses. Reads
//! are **snapshot-consistent**: they are served from the last *committed*
//! snapshot (an `Arc`-swapped [`service::Snapshot`]), never from a
//! half-applied batch. Correctness of coalescing follows from canonical
//! uniqueness — the repo-wide total preference order makes the LD matching
//! a pure function of the final graph state, so any batching of an
//! order-preserved update sequence commits the same matching.
//!
//! The transport comes in two interchangeable models ([`server::IoModel`]):
//! the default **reactor** — a few epoll event-loop threads (via the
//! vendored [`epoll_shim`], `poll(2)` off Linux) driving non-blocking
//! per-connection state machines with a zero-allocation fast path for hot
//! `mate`/`update` frames — and the legacy **blocking**
//! thread-per-connection pool, kept as the measured baseline of the
//! `ext_serve` throughput study. Both emit bit-identical wire responses.
//!
//! Modules:
//! - [`protocol`] — typed requests/responses over the hand-rolled
//!   [`ldgm_gpusim::json::Json`] value, plus the incremental
//!   [`protocol::FrameSplitter`] and the allocation-free
//!   [`protocol::wire`] serializers the reactor's hot path uses.
//! - [`service`] — the coalescing service core: pending buffer, snapshot
//!   discipline, `subscribe` notifications, per-tenant sim-time billing
//!   with admission control.
//! - [`reactor`] — the epoll event loops: shard routing, batched flushes,
//!   write-interest management, backpressure, subscription fan-out via
//!   per-shard notifier queues.
//! - [`server`] — the shared TCP front door: [`server::serve`] /
//!   [`server::serve_blocking`] / [`server::serve_opts`], the deadline
//!   flusher, transport stats, graceful shutdown with an offline replay
//!   check.

pub mod protocol;
pub mod reactor;
pub mod server;
pub mod service;

pub use ldgm_core::UNMATCHED;
pub use protocol::{FrameSplitter, ParsedRequest, Request, SplitFrame, MAX_FRAME_LEN};
pub use server::{
    serve, serve_blocking, serve_opts, IoModel, ServerHandle, ServerOptions, ServerStats,
};
pub use service::{
    resolve_dyn_config, AdmissionError, FlushSummary, MatchService, MateChange, ServeConfig,
    ServiceStats, Snapshot, SubmitAck,
};

//! The TCP layer: a shared front door over two interchangeable I/O
//! models.
//!
//! - [`IoModel::Reactor`] (the default behind [`serve`]): a few epoll
//!   event-loop threads ([`crate::reactor`]) multiplex every connection —
//!   non-blocking sockets, per-connection state machines, batched
//!   flushes, write interest armed only while a send buffer is
//!   non-empty. This is the high-throughput path.
//! - [`IoModel::Blocking`] ([`serve_blocking`]): the original
//!   thread-per-connection pool — one acceptor feeding `threads` handler
//!   threads over an mpsc channel. Kept as the measured baseline for the
//!   `ext_serve` throughput study and as a semantics reference: both
//!   models speak bit-identical wire responses.
//!
//! Either way a flusher thread ticks the deadline-based flush of every
//! resident dataset so a trickle of updates still commits without
//! waiting for the coalesce target, and shutdown is cooperative: the
//! `shutdown` op (or [`ServerHandle::shutdown`]) flushes every dataset,
//! runs the offline replay check, flips the stop flag and wakes every
//! event loop (reactor) or nudges the acceptor with a loopback connect
//! (blocking).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ldgm_gpusim::json::Json;
use parking_lot::Mutex;

use crate::protocol::{
    err_response, frame_too_large_response, ok_response, ParsedRequest, Request, MAX_FRAME_LEN,
};
use crate::reactor::{spawn_shards, ShardHandle};
use crate::service::{MatchService, UNMATCHED};

/// Which I/O engine drives the sockets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoModel {
    /// Epoll event loops (poll(2) off Linux): a few threads, many
    /// connections, zero-allocation hot path. The default.
    Reactor,
    /// Thread-per-connection on a worker pool: the pre-reactor baseline.
    Blocking,
}

impl IoModel {
    /// Stable wire/CLI name (`"reactor"` / `"blocking"`).
    pub fn label(self) -> &'static str {
        match self {
            IoModel::Reactor => "reactor",
            IoModel::Blocking => "blocking",
        }
    }

    /// Parse a CLI/wire name (the inverse of [`IoModel::label`]).
    pub fn parse(s: &str) -> Option<IoModel> {
        match s {
            "reactor" => Some(IoModel::Reactor),
            "blocking" => Some(IoModel::Blocking),
            _ => None,
        }
    }
}

/// Tunables for [`serve_opts`]; [`Default`] matches plain [`serve`].
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// I/O engine.
    pub io: IoModel,
    /// Reactor event-loop threads, or blocking handler threads.
    pub threads: usize,
    /// Per-frame byte cap; longer lines answer `413` and are discarded.
    pub max_frame: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions { io: IoModel::Reactor, threads: 2, max_frame: MAX_FRAME_LEN }
    }
}

/// Server-wide transport counters, surfaced through the `stats` op and
/// the `serve.*` gauges of `match-info`.
#[derive(Debug)]
pub struct ServerStats {
    pub(crate) accepted: AtomicU64,
    pub(crate) connections: AtomicUsize,
    pub(crate) requests: AtomicU64,
    pub(crate) backpressure_stalls: AtomicU64,
    started: Instant,
    io: IoModel,
    threads: usize,
}

impl ServerStats {
    fn new(io: IoModel, threads: usize) -> ServerStats {
        ServerStats {
            accepted: AtomicU64::new(0),
            connections: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            backpressure_stalls: AtomicU64::new(0),
            started: Instant::now(),
            io,
            threads,
        }
    }

    /// Connections currently open.
    pub fn connections(&self) -> usize {
        self.connections.load(Ordering::Relaxed)
    }

    /// Connections accepted since boot.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Requests handled since boot (every non-blank frame counts, even
    /// malformed ones — they are answered too).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Flushes that hit `WouldBlock` and armed write interest (reactor)
    /// — i.e. moments a peer was slower than the server.
    pub fn backpressure_stalls(&self) -> u64 {
        self.backpressure_stalls.load(Ordering::Relaxed)
    }

    /// Lifetime mean requests/second since boot.
    pub fn rps(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.requests() as f64 / secs
        } else {
            0.0
        }
    }
}

/// One reactor shard's counters, for the `stats` op's `server.shards`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ShardSnapshot {
    pub(crate) connections: usize,
    pub(crate) requests: u64,
}

/// Resolve a request's dataset route to an index into `services`.
pub(crate) fn resolve_idx(
    services: &[Arc<MatchService>],
    dataset: Option<&str>,
) -> Result<usize, Json> {
    match dataset {
        None => Ok(0),
        Some(name) => services.iter().position(|s| s.name() == name).ok_or_else(|| {
            let valid: Vec<&str> = services.iter().map(|s| s.name()).collect();
            err_response(404, format!("unknown dataset '{name}' (loaded: {})", valid.join(", ")))
        }),
    }
}

/// The `shutdown` response body: flush every dataset, verify each
/// against an offline replay, report. (The caller flips the stop flag.)
pub(crate) fn shutdown_response(services: &[Arc<MatchService>]) -> Json {
    let mut datasets = Vec::new();
    let mut all_identical = true;
    for s in services {
        s.flush();
        let replay = s.replay_check();
        all_identical &= replay.is_ok();
        let snap = s.snapshot();
        datasets.push(
            Json::object()
                .with("dataset", s.name())
                .with("epoch", snap.epoch)
                .with("weight", snap.weight)
                .with("size", snap.cardinality)
                .with("replay_identical", replay.is_ok())
                .with(
                    "replay_error",
                    match replay {
                        Ok(()) => Json::Null,
                        Err(e) => Json::from(e),
                    },
                ),
        );
    }
    ok_response()
        .with("stopping", true)
        .with("replay_identical", all_identical)
        .with("datasets", datasets)
}

/// The `server` object embedded in `stats` responses.
fn server_stats_json(stats: &ServerStats, shards: &[ShardSnapshot]) -> Json {
    let shard_list: Vec<Json> = shards
        .iter()
        .map(|s| Json::object().with("connections", s.connections).with("requests", s.requests))
        .collect();
    Json::object()
        .with("io", stats.io.label())
        .with("threads", stats.threads)
        .with("connections", stats.connections())
        .with("accepted", stats.accepted())
        .with("requests", stats.requests())
        .with("rps", stats.rps())
        .with("backpressure_stalls", stats.backpressure_stalls())
        .with("shards", shard_list)
}

/// The `stats` response: the service's coalescer/tenant accounting plus
/// the transport's `server` object.
pub(crate) fn stats_response(
    service: &MatchService,
    stats: &ServerStats,
    shards: &[ShardSnapshot],
) -> Json {
    let mut j = service.stats_json();
    j.set("ok", true);
    j.set("server", server_stats_json(stats, shards));
    j
}

/// The `match-info` response, with the transport's `serve.*` gauges
/// merged into the service's schema-v2 gauge object.
pub(crate) fn info_response(service: &MatchService, stats: &ServerStats) -> Json {
    let mut j = service.info_json();
    j.set("ok", true);
    let mut gauges = j.get("gauges").cloned().unwrap_or_else(Json::object);
    gauges.set("serve.connections", stats.connections() as f64);
    gauges.set("serve.rps", stats.rps());
    gauges.set("serve.backpressure_stalls", stats.backpressure_stalls() as f64);
    j.set("gauges", gauges);
    j
}

/// A running server: its bound address and the handles needed to stop it.
pub struct ServerHandle {
    /// The actual bound address (the requested port may have been 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    stats: Arc<ServerStats>,
    /// Reactor shards to wake on shutdown (empty for the blocking model).
    shards: Vec<Arc<ShardHandle>>,
}

impl ServerHandle {
    /// True once a `shutdown` op (or [`ServerHandle::shutdown`]) ran.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Live transport counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stop the server and join its threads. Idempotent with the wire
    /// `shutdown` op; in-flight connections are drained, not severed.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        if self.shards.is_empty() {
            // Nudge the blocking accept loop.
            let _ = TcpStream::connect(self.addr);
        } else {
            for s in &self.shards {
                s.wake();
            }
        }
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Block until every server thread exits (i.e. until some client
    /// sends the `shutdown` op).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Start serving `services` (first entry is the default dataset) on
/// `bind` (e.g. `"127.0.0.1:0"`) with `threads` reactor event-loop
/// threads. Shorthand for [`serve_opts`] with [`IoModel::Reactor`].
pub fn serve(
    services: Vec<Arc<MatchService>>,
    bind: &str,
    threads: usize,
) -> std::io::Result<ServerHandle> {
    serve_opts(services, bind, ServerOptions { threads, ..ServerOptions::default() })
}

/// Start serving with the legacy thread-per-connection model (`threads`
/// handler threads). The baseline the throughput study measures against.
pub fn serve_blocking(
    services: Vec<Arc<MatchService>>,
    bind: &str,
    threads: usize,
) -> std::io::Result<ServerHandle> {
    serve_opts(
        services,
        bind,
        ServerOptions { io: IoModel::Blocking, threads, ..ServerOptions::default() },
    )
}

/// Start serving with explicit [`ServerOptions`].
pub fn serve_opts(
    services: Vec<Arc<MatchService>>,
    bind: &str,
    opts: ServerOptions,
) -> std::io::Result<ServerHandle> {
    assert!(!services.is_empty(), "serve requires at least one dataset");
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let services = Arc::new(services);
    let threads_n = opts.threads.max(1);
    let stats = Arc::new(ServerStats::new(opts.io, threads_n));
    let mut threads = Vec::new();

    // Deadline flusher: ticks at a fraction of the smallest deadline.
    let min_deadline =
        services.iter().map(|s| s.config().deadline).min().unwrap_or(Duration::from_millis(10));
    let tick = (min_deadline / 2).clamp(Duration::from_millis(1), Duration::from_millis(50));
    {
        let services = services.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                for s in services.iter() {
                    s.flush_due();
                }
                std::thread::sleep(tick);
            }
        }));
    }

    let shards = match opts.io {
        IoModel::Reactor => {
            let (shards, joins) = spawn_shards(
                listener,
                services.clone(),
                stats.clone(),
                stop.clone(),
                threads_n,
                opts.max_frame,
            )?;
            threads.extend(joins);
            shards
        }
        IoModel::Blocking => {
            spawn_blocking(
                listener,
                services,
                stats.clone(),
                stop.clone(),
                threads_n,
                opts.max_frame,
                &mut threads,
            );
            Vec::new()
        }
    };

    Ok(ServerHandle { addr, stop, threads, stats, shards })
}

/// The legacy acceptor + worker pool.
fn spawn_blocking(
    listener: TcpListener,
    services: Arc<Vec<Arc<MatchService>>>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    workers: usize,
    max_frame: usize,
    threads: &mut Vec<JoinHandle<()>>,
) {
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    for _ in 0..workers {
        let rx = rx.clone();
        let services = services.clone();
        let stats = stats.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || loop {
            let conn = { rx.lock().recv() };
            match conn {
                Ok(stream) => handle_connection(&services, &stats, stream, &stop, max_frame),
                Err(_) => return, // acceptor gone
            }
        }));
    }
    {
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break; // the nudge connect lands here
                }
                match stream {
                    Ok(s) => {
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // Dropping `tx` drains the worker pool.
        }));
    }
}

fn write_line(out: &Mutex<TcpStream>, j: &Json) -> bool {
    let mut line = j.to_string_compact();
    line.push('\n');
    let mut s = out.lock();
    s.write_all(line.as_bytes()).and_then(|_| s.flush()).is_ok()
}

fn handle_connection(
    services: &[Arc<MatchService>],
    stats: &Arc<ServerStats>,
    stream: TcpStream,
    stop: &Arc<AtomicBool>,
    max_frame: usize,
) {
    stats.accepted.fetch_add(1, Ordering::Relaxed);
    stats.connections.fetch_add(1, Ordering::Relaxed);
    // Balance the connection gauge on every exit path.
    struct OpenConn<'a>(&'a ServerStats);
    impl Drop for OpenConn<'_> {
        fn drop(&mut self) {
            self.0.connections.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _open = OpenConn(stats);

    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
    // A finite read timeout lets this handler notice the stop flag even
    // while its client sits idle, so shutdown never hangs on an open
    // connection. Nagle's algorithm would add ~40 ms of delayed-ACK
    // latency to the small request/response frames this protocol sends.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut reader = BufReader::new(read_half);
    // Until `hello` renames it, the tenant is the peer socket address —
    // unique per connection, so accounting still separates clients.
    let mut tenant = format!("client-{peer}");
    let mut line = String::new();

    loop {
        line.clear();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return, // client hung up
                Ok(_) => break,
                // Timeout mid-wait (or mid-line: already-read bytes stay
                // appended to `line`, so continuing is lossless).
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        stats.requests.fetch_add(1, Ordering::Relaxed);
        if line.len() > max_frame {
            // Same cap the reactor's splitter enforces mid-stream; the
            // buffered reader sees the whole line, so checking after the
            // fact bounds memory just as well here.
            if !write_line(&writer, &frame_too_large_response(line.len(), max_frame)) {
                return;
            }
            continue;
        }
        let parsed = match ParsedRequest::parse(line.trim()) {
            Ok(p) => p,
            Err(e) => {
                if !write_line(&writer, &err_response(400, e)) {
                    return;
                }
                continue;
            }
        };
        let service = match resolve_idx(services, parsed.dataset.as_deref()) {
            Ok(i) => &services[i],
            Err(resp) => {
                if !write_line(&writer, &resp) {
                    return;
                }
                continue;
            }
        };
        let response = match parsed.request {
            Request::Hello { tenant: t } => {
                tenant = t;
                ok_response().with("tenant", tenant.clone())
            }
            Request::Mate { v } => {
                let (mate, snap) = service.mate(&tenant, v);
                if (v as usize) >= snap.mate.len() {
                    err_response(404, format!("vertex {v} out of range (n={})", snap.mate.len()))
                } else {
                    let mate_json = match mate {
                        Some(m) => Json::from(m),
                        None => Json::Null,
                    };
                    ok_response().with("v", v).with("mate", mate_json).with("epoch", snap.epoch)
                }
            }
            Request::MatchInfo => info_response(service, stats),
            Request::Update { update } => match service.submit(&tenant, &[update]) {
                Ok(ack) => ok_response()
                    .with("admitted", ack.admitted)
                    .with("pending", ack.pending)
                    .with("flushed", ack.flushed),
                Err(e) => err_response(429, e.to_string()),
            },
            Request::UpdateBatch { updates } => match service.submit(&tenant, &updates) {
                Ok(ack) => ok_response()
                    .with("admitted", ack.admitted)
                    .with("pending", ack.pending)
                    .with("flushed", ack.flushed),
                Err(e) => err_response(429, e.to_string()),
            },
            Request::Subscribe { v } => {
                if (v as usize) >= service.snapshot().mate.len() {
                    err_response(404, format!("vertex {v} out of range"))
                } else {
                    let out = writer.clone();
                    let dataset = service.name().to_string();
                    service.subscribe(
                        v,
                        Box::new(move |c| {
                            let ev = Json::object()
                                .with("event", "mate-change")
                                .with("dataset", dataset.clone())
                                .with("v", c.v)
                                .with(
                                    "old",
                                    if c.old == UNMATCHED { Json::Null } else { Json::from(c.old) },
                                )
                                .with(
                                    "new",
                                    if c.new == UNMATCHED { Json::Null } else { Json::from(c.new) },
                                )
                                .with("epoch", c.epoch);
                            write_line(&out, &ev)
                        }),
                    );
                    ok_response().with("subscribed", v)
                }
            }
            Request::Flush => match service.flush() {
                Some(f) => ok_response()
                    .with("flushed", f.updates)
                    .with("epoch", f.epoch)
                    .with("sim_time", f.sim_time),
                None => ok_response().with("flushed", 0u64),
            },
            Request::Stats => stats_response(service, stats, &[]),
            Request::Shutdown => {
                let resp = shutdown_response(services);
                stop.store(true, Ordering::SeqCst);
                resp
            }
        };
        let stopping = stop.load(Ordering::SeqCst);
        if !write_line(&writer, &response) {
            return;
        }
        if stopping {
            // Nudge the acceptor so it observes the flag.
            if let Ok(addr) = writer.lock().local_addr() {
                let _ = TcpStream::connect(addr);
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ERR_FRAME_TOO_LARGE;
    use crate::service::ServeConfig;
    use ldgm_dyn::DynConfig;
    use ldgm_gpusim::{json, Platform};
    use ldgm_graph::gen::urand;

    struct Client {
        reader: BufReader<TcpStream>,
        stream: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            Client { reader, stream }
        }

        fn send(&mut self, line: &str) -> Json {
            self.stream.write_all(line.as_bytes()).unwrap();
            self.stream.write_all(b"\n").unwrap();
            self.read_msg()
        }

        fn read_msg(&mut self) -> Json {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            json::parse(line.trim()).unwrap()
        }
    }

    fn make_service(n: usize, m: usize, seed: u64, target: usize) -> Arc<MatchService> {
        let g = urand(n, m, seed);
        let cfg = DynConfig::builder(Platform::dgx_a100()).devices(2).build().unwrap();
        Arc::new(MatchService::new(
            "g",
            g,
            cfg,
            ServeConfig {
                coalesce_target: target,
                // Keep the background flusher out of these deterministic
                // sessions: only the size target (or explicit ops) flush.
                deadline: Duration::from_secs(3600),
                ..ServeConfig::default()
            },
        ))
    }

    fn start(n: usize, m: usize, seed: u64, target: usize) -> ServerHandle {
        serve(vec![make_service(n, m, seed, target)], "127.0.0.1:0", 2).unwrap()
    }

    fn session(handle: ServerHandle, io: &str) {
        let addr = handle.addr;
        let mut c = Client::connect(addr);

        let hello = c.send(r#"{"op":"hello","tenant":"alice"}"#);
        assert_eq!(hello.get("ok").and_then(Json::as_bool), Some(true));

        let info = c.send(r#"{"op":"match-info"}"#);
        assert_eq!(info.get("epoch").and_then(Json::as_f64), Some(0.0));
        let seed_weight = info.get("weight").and_then(Json::as_f64).unwrap();
        assert!(seed_weight > 0.0);
        let gauges = info.get("gauges").expect("gauges object");
        assert!(
            gauges.get("serve.connections").and_then(Json::as_f64).unwrap() >= 1.0,
            "this very connection must show in serve.connections"
        );
        assert!(gauges.get("serve.rps").is_some());
        assert!(gauges.get("serve.backpressure_stalls").is_some());

        // A malformed line errors without killing the connection.
        let bad = c.send(r#"{"op":"warp"}"#);
        assert_eq!(bad.get("code").and_then(Json::as_f64), Some(400.0));

        // Heavy insert: must flush at the 4-update target and show up in
        // mate queries.
        let burst = r#"{"op":"update-batch","updates":[
            {"kind":"insert","u":0,"v":50,"w":1000.0},
            {"kind":"insert","u":1,"v":51,"w":1000.0},
            {"kind":"insert","u":2,"v":52,"w":1000.0},
            {"kind":"insert","u":3,"v":53,"w":1000.0}]}"#
            .replace('\n', " ");
        let ack = c.send(&burst);
        assert_eq!(ack.get("flushed").and_then(Json::as_bool), Some(true));
        let mate = c.send(r#"{"op":"mate","v":0}"#);
        assert_eq!(mate.get("mate").and_then(Json::as_f64), Some(50.0));
        assert_eq!(mate.get("epoch").and_then(Json::as_f64), Some(1.0));

        // A second concurrent client sees the same committed snapshot.
        let mut c2 = Client::connect(addr);
        let mate2 = c2.send(r#"{"op":"mate","v":0,"dataset":"g"}"#);
        assert_eq!(mate2.get("mate").and_then(Json::as_f64), Some(50.0));
        let missing = c2.send(r#"{"op":"mate","v":0,"dataset":"nope"}"#);
        assert_eq!(missing.get("code").and_then(Json::as_f64), Some(404.0));

        let stats = c.send(r#"{"op":"stats"}"#);
        assert_eq!(stats.get("flushes").and_then(Json::as_f64), Some(1.0));
        let tenants = stats.get("tenants").unwrap();
        assert!(tenants.get("alice").is_some(), "hello must rename the tenant");
        let server = stats.get("server").expect("server transport object");
        assert_eq!(server.get("io").and_then(Json::as_str), Some(io));
        assert!(server.get("requests").and_then(Json::as_f64).unwrap() >= 7.0);
        assert!(server.get("connections").and_then(Json::as_f64).unwrap() >= 2.0);

        let bye = c.send(r#"{"op":"shutdown"}"#);
        assert_eq!(bye.get("replay_identical").and_then(Json::as_bool), Some(true));
        handle.join();
    }

    #[test]
    fn end_to_end_session_over_tcp() {
        session(start(100, 400, 7, 4), "reactor");
    }

    #[test]
    fn blocking_model_answers_the_same_session() {
        let handle = serve_blocking(vec![make_service(100, 400, 7, 4)], "127.0.0.1:0", 4).unwrap();
        session(handle, "blocking");
    }

    #[test]
    fn subscription_events_arrive_over_the_wire() {
        let handle = start(80, 300, 9, 2);
        let mut c = Client::connect(handle.addr);
        // Insert a dominant edge, then delete it; subscriber on u sees the
        // second commit change u's mate.
        let ins = r#"{"op":"update-batch","updates":[
            {"kind":"insert","u":5,"v":40,"w":500.0},
            {"kind":"insert","u":6,"v":41,"w":500.0}]}"#
            .replace('\n', " ");
        c.send(&ins);
        assert_eq!(
            c.send(r#"{"op":"subscribe","v":5}"#).get("subscribed").and_then(Json::as_f64),
            Some(5.0)
        );
        let del = r#"{"op":"update-batch","updates":[
            {"kind":"delete","u":5,"v":40},
            {"kind":"delete","u":6,"v":41}]}"#
            .replace('\n', " ");
        // The flush happens inline during submit; depending on the model
        // the mate-change event may be queued before or after the ack, so
        // accept either order.
        let m1 = c.send(&del);
        let m2 = c.read_msg();
        let (ev, ack) = if m1.get("event").is_some() { (m1, m2) } else { (m2, m1) };
        assert_eq!(ack.get("flushed").and_then(Json::as_bool), Some(true));
        assert_eq!(ev.get("event").and_then(Json::as_str), Some("mate-change"));
        assert_eq!(ev.get("v").and_then(Json::as_f64), Some(5.0));
        assert_eq!(ev.get("old").and_then(Json::as_f64), Some(40.0));
        handle.shutdown();
    }

    #[test]
    fn admission_control_answers_429_on_the_wire() {
        let g = urand(50, 150, 3);
        let cfg = DynConfig::builder(Platform::dgx_a100()).build().unwrap();
        let service = Arc::new(MatchService::new(
            "g",
            g,
            cfg,
            ServeConfig {
                coalesce_target: 10_000,
                max_pending_per_tenant: 3,
                deadline: Duration::from_secs(3600),
            },
        ));
        let handle = serve(vec![service], "127.0.0.1:0", 2).unwrap();
        let mut c = Client::connect(handle.addr);
        for i in 0..3 {
            let resp = c.send(&format!(
                r#"{{"op":"update","kind":"insert","u":{i},"v":{},"w":1.0}}"#,
                i + 20
            ));
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{i}");
        }
        let resp = c.send(r#"{"op":"update","kind":"insert","u":9,"v":29,"w":1.0}"#);
        assert_eq!(resp.get("code").and_then(Json::as_f64), Some(429.0));
        // An explicit flush clears the backlog and admits again.
        c.send(r#"{"op":"flush"}"#);
        let resp = c.send(r#"{"op":"update","kind":"insert","u":9,"v":29,"w":1.0}"#);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        handle.shutdown();
    }

    #[test]
    fn oversized_frames_answer_413_and_keep_the_connection() {
        for io in [IoModel::Reactor, IoModel::Blocking] {
            let handle = serve_opts(
                vec![make_service(60, 200, 5, 1000)],
                "127.0.0.1:0",
                ServerOptions { io, threads: 2, max_frame: 1024 },
            )
            .unwrap();
            let mut c = Client::connect(handle.addr);
            // A 4 KiB line of garbage blows the 1 KiB cap…
            let big = "x".repeat(4096);
            let resp = c.send(&big);
            assert_eq!(resp.get("code").and_then(Json::as_f64), Some(413.0), "{io:?}");
            assert!(
                resp.get("error").and_then(Json::as_str).unwrap().contains(ERR_FRAME_TOO_LARGE),
                "{io:?}"
            );
            // …and the connection still answers real requests after it.
            let mate = c.send(r#"{"op":"mate","v":1}"#);
            assert_eq!(mate.get("ok").and_then(Json::as_bool), Some(true), "{io:?}");
            if io == IoModel::Reactor {
                // Bad UTF-8 inside a frame is a 400, not a hangup. (The
                // blocking model's line reader can't represent non-UTF-8
                // input, so only the reactor makes this promise.)
                self::write_raw(&mut c.stream, b"\"\xff\xfe\"\n");
                let resp = c.read_msg();
                assert_eq!(resp.get("code").and_then(Json::as_f64), Some(400.0), "{io:?}");
            }
            handle.shutdown();
        }
    }

    fn write_raw(stream: &mut TcpStream, bytes: &[u8]) {
        stream.write_all(bytes).unwrap();
    }
}

//! The TCP layer: blocking `std::net` sockets on a small thread pool.
//!
//! One acceptor thread hands connections to `workers` handler threads
//! over an mpsc channel; each handler owns its connection for its
//! lifetime (requests on one connection are processed in order, as the
//! protocol promises). A flusher thread ticks the deadline-based flush of
//! every resident dataset so a trickle of updates still commits without
//! waiting for the coalesce target.
//!
//! Shutdown is cooperative: the `shutdown` op (or
//! [`ServerHandle::shutdown`]) flushes every dataset, runs the offline
//! replay check, flips the stop flag and nudges the acceptor with a
//! loopback connect so it can exit its blocking `accept`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use ldgm_gpusim::json::Json;
use parking_lot::Mutex;

use crate::protocol::{err_response, ok_response, ParsedRequest, Request};
use crate::service::{MatchService, UNMATCHED};

/// A running server: its bound address and the handles needed to stop it.
pub struct ServerHandle {
    /// The actual bound address (the requested port may have been 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// True once a `shutdown` op (or [`ServerHandle::shutdown`]) ran.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stop the server and join its threads. Idempotent with the wire
    /// `shutdown` op; in-flight connections are drained, not severed.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept loop.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Block until every server thread exits (i.e. until some client
    /// sends the `shutdown` op).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Start serving `services` (first entry is the default dataset) on
/// `bind` (e.g. `"127.0.0.1:0"`) with `workers` handler threads.
pub fn serve(
    services: Vec<Arc<MatchService>>,
    bind: &str,
    workers: usize,
) -> std::io::Result<ServerHandle> {
    assert!(!services.is_empty(), "serve requires at least one dataset");
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let services = Arc::new(services);
    let mut threads = Vec::new();

    // Deadline flusher: ticks at a fraction of the smallest deadline.
    let min_deadline =
        services.iter().map(|s| s.config().deadline).min().unwrap_or(Duration::from_millis(10));
    let tick = (min_deadline / 2).clamp(Duration::from_millis(1), Duration::from_millis(50));
    {
        let services = services.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                for s in services.iter() {
                    s.flush_due();
                }
                std::thread::sleep(tick);
            }
        }));
    }

    // Worker pool fed by the acceptor.
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    for _ in 0..workers.max(1) {
        let rx = rx.clone();
        let services = services.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || loop {
            let conn = { rx.lock().recv() };
            match conn {
                Ok(stream) => handle_connection(&services, stream, &stop),
                Err(_) => return, // acceptor gone
            }
        }));
    }

    // Acceptor.
    {
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break; // the nudge connect lands here
                }
                match stream {
                    Ok(s) => {
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // Dropping `tx` drains the worker pool.
        }));
    }

    Ok(ServerHandle { addr, stop, threads })
}

fn resolve<'a>(
    services: &'a [Arc<MatchService>],
    dataset: Option<&str>,
) -> Result<&'a Arc<MatchService>, Json> {
    match dataset {
        None => Ok(&services[0]),
        Some(name) => services.iter().find(|s| s.name() == name).ok_or_else(|| {
            let valid: Vec<&str> = services.iter().map(|s| s.name()).collect();
            err_response(404, format!("unknown dataset '{name}' (loaded: {})", valid.join(", ")))
        }),
    }
}

fn write_line(out: &Mutex<TcpStream>, j: &Json) -> bool {
    let mut line = j.to_string_compact();
    line.push('\n');
    let mut s = out.lock();
    s.write_all(line.as_bytes()).and_then(|_| s.flush()).is_ok()
}

fn handle_connection(services: &[Arc<MatchService>], stream: TcpStream, stop: &Arc<AtomicBool>) {
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
    // A finite read timeout lets this handler notice the stop flag even
    // while its client sits idle, so shutdown never hangs on an open
    // connection. Nagle's algorithm would add ~40 ms of delayed-ACK
    // latency to the small request/response frames this protocol sends.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut reader = BufReader::new(read_half);
    // Until `hello` renames it, the tenant is the peer socket address —
    // unique per connection, so accounting still separates clients.
    let mut tenant = format!("client-{peer}");
    let mut line = String::new();

    loop {
        line.clear();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return, // client hung up
                Ok(_) => break,
                // Timeout mid-wait (or mid-line: already-read bytes stay
                // appended to `line`, so continuing is lossless).
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match ParsedRequest::parse(line.trim()) {
            Ok(p) => p,
            Err(e) => {
                if !write_line(&writer, &err_response(400, e)) {
                    return;
                }
                continue;
            }
        };
        let service = match resolve(services, parsed.dataset.as_deref()) {
            Ok(s) => s,
            Err(resp) => {
                if !write_line(&writer, &resp) {
                    return;
                }
                continue;
            }
        };
        let response = match parsed.request {
            Request::Hello { tenant: t } => {
                tenant = t;
                ok_response().with("tenant", tenant.clone())
            }
            Request::Mate { v } => {
                let (mate, snap) = service.mate(&tenant, v);
                if (v as usize) >= snap.mate.len() {
                    err_response(404, format!("vertex {v} out of range (n={})", snap.mate.len()))
                } else {
                    let mate_json = match mate {
                        Some(m) => Json::from(m),
                        None => Json::Null,
                    };
                    ok_response().with("v", v).with("mate", mate_json).with("epoch", snap.epoch)
                }
            }
            Request::MatchInfo => {
                let mut j = service.info_json();
                j.set("ok", true);
                j
            }
            Request::Update { update } => match service.submit(&tenant, &[update]) {
                Ok(ack) => ok_response()
                    .with("admitted", ack.admitted)
                    .with("pending", ack.pending)
                    .with("flushed", ack.flushed),
                Err(e) => err_response(429, e.to_string()),
            },
            Request::UpdateBatch { updates } => match service.submit(&tenant, &updates) {
                Ok(ack) => ok_response()
                    .with("admitted", ack.admitted)
                    .with("pending", ack.pending)
                    .with("flushed", ack.flushed),
                Err(e) => err_response(429, e.to_string()),
            },
            Request::Subscribe { v } => {
                if (v as usize) >= service.snapshot().mate.len() {
                    err_response(404, format!("vertex {v} out of range"))
                } else {
                    let out = writer.clone();
                    let dataset = service.name().to_string();
                    service.subscribe(
                        v,
                        Box::new(move |c| {
                            let ev = Json::object()
                                .with("event", "mate-change")
                                .with("dataset", dataset.clone())
                                .with("v", c.v)
                                .with(
                                    "old",
                                    if c.old == UNMATCHED { Json::Null } else { Json::from(c.old) },
                                )
                                .with(
                                    "new",
                                    if c.new == UNMATCHED { Json::Null } else { Json::from(c.new) },
                                )
                                .with("epoch", c.epoch);
                            write_line(&out, &ev)
                        }),
                    );
                    ok_response().with("subscribed", v)
                }
            }
            Request::Flush => match service.flush() {
                Some(f) => ok_response()
                    .with("flushed", f.updates)
                    .with("epoch", f.epoch)
                    .with("sim_time", f.sim_time),
                None => ok_response().with("flushed", 0u64),
            },
            Request::Stats => {
                let mut j = service.stats_json();
                j.set("ok", true);
                j
            }
            Request::Shutdown => {
                // Flush everything, then verify each dataset against an
                // offline replay before reporting.
                let mut datasets = Vec::new();
                let mut all_identical = true;
                for s in services {
                    s.flush();
                    let replay = s.replay_check();
                    all_identical &= replay.is_ok();
                    let snap = s.snapshot();
                    datasets.push(
                        Json::object()
                            .with("dataset", s.name())
                            .with("epoch", snap.epoch)
                            .with("weight", snap.weight)
                            .with("size", snap.cardinality)
                            .with("replay_identical", replay.is_ok())
                            .with(
                                "replay_error",
                                match replay {
                                    Ok(()) => Json::Null,
                                    Err(e) => Json::from(e),
                                },
                            ),
                    );
                }
                stop.store(true, Ordering::SeqCst);
                ok_response()
                    .with("stopping", true)
                    .with("replay_identical", all_identical)
                    .with("datasets", datasets)
            }
        };
        let stopping = stop.load(Ordering::SeqCst);
        if !write_line(&writer, &response) {
            return;
        }
        if stopping {
            // Nudge the acceptor so it observes the flag.
            if let Ok(addr) = writer.lock().local_addr() {
                let _ = TcpStream::connect(addr);
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use ldgm_dyn::DynConfig;
    use ldgm_gpusim::{json, Platform};
    use ldgm_graph::gen::urand;

    struct Client {
        reader: BufReader<TcpStream>,
        stream: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            Client { reader, stream }
        }

        fn send(&mut self, line: &str) -> Json {
            self.stream.write_all(line.as_bytes()).unwrap();
            self.stream.write_all(b"\n").unwrap();
            self.read_msg()
        }

        fn read_msg(&mut self) -> Json {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            json::parse(line.trim()).unwrap()
        }
    }

    fn start(n: usize, m: usize, seed: u64, target: usize) -> ServerHandle {
        let g = urand(n, m, seed);
        let cfg = DynConfig::builder(Platform::dgx_a100()).devices(2).build().unwrap();
        let service = Arc::new(MatchService::new(
            "g",
            g,
            cfg,
            ServeConfig {
                coalesce_target: target,
                // Keep the background flusher out of these deterministic
                // sessions: only the size target (or explicit ops) flush.
                deadline: Duration::from_secs(3600),
                ..ServeConfig::default()
            },
        ));
        serve(vec![service], "127.0.0.1:0", 4).unwrap()
    }

    #[test]
    fn end_to_end_session_over_tcp() {
        let handle = start(100, 400, 7, 4);
        let addr = handle.addr;
        let mut c = Client::connect(addr);

        let hello = c.send(r#"{"op":"hello","tenant":"alice"}"#);
        assert_eq!(hello.get("ok").and_then(Json::as_bool), Some(true));

        let info = c.send(r#"{"op":"match-info"}"#);
        assert_eq!(info.get("epoch").and_then(Json::as_f64), Some(0.0));
        let seed_weight = info.get("weight").and_then(Json::as_f64).unwrap();
        assert!(seed_weight > 0.0);

        // A malformed line errors without killing the connection.
        let bad = c.send(r#"{"op":"warp"}"#);
        assert_eq!(bad.get("code").and_then(Json::as_f64), Some(400.0));

        // Heavy insert: must flush at the 4-update target and show up in
        // mate queries.
        let burst = r#"{"op":"update-batch","updates":[
            {"kind":"insert","u":0,"v":50,"w":1000.0},
            {"kind":"insert","u":1,"v":51,"w":1000.0},
            {"kind":"insert","u":2,"v":52,"w":1000.0},
            {"kind":"insert","u":3,"v":53,"w":1000.0}]}"#
            .replace('\n', " ");
        let ack = c.send(&burst);
        assert_eq!(ack.get("flushed").and_then(Json::as_bool), Some(true));
        let mate = c.send(r#"{"op":"mate","v":0}"#);
        assert_eq!(mate.get("mate").and_then(Json::as_f64), Some(50.0));
        assert_eq!(mate.get("epoch").and_then(Json::as_f64), Some(1.0));

        // A second concurrent client sees the same committed snapshot.
        let mut c2 = Client::connect(addr);
        let mate2 = c2.send(r#"{"op":"mate","v":0,"dataset":"g"}"#);
        assert_eq!(mate2.get("mate").and_then(Json::as_f64), Some(50.0));
        let missing = c2.send(r#"{"op":"mate","v":0,"dataset":"nope"}"#);
        assert_eq!(missing.get("code").and_then(Json::as_f64), Some(404.0));

        let stats = c.send(r#"{"op":"stats"}"#);
        assert_eq!(stats.get("flushes").and_then(Json::as_f64), Some(1.0));
        let tenants = stats.get("tenants").unwrap();
        assert!(tenants.get("alice").is_some(), "hello must rename the tenant");

        let bye = c.send(r#"{"op":"shutdown"}"#);
        assert_eq!(bye.get("replay_identical").and_then(Json::as_bool), Some(true));
        handle.join();
    }

    #[test]
    fn subscription_events_arrive_over_the_wire() {
        let handle = start(80, 300, 9, 2);
        let mut c = Client::connect(handle.addr);
        // Insert a dominant edge, then delete it; subscriber on u sees the
        // second commit change u's mate.
        let ins = r#"{"op":"update-batch","updates":[
            {"kind":"insert","u":5,"v":40,"w":500.0},
            {"kind":"insert","u":6,"v":41,"w":500.0}]}"#
            .replace('\n', " ");
        c.send(&ins);
        assert_eq!(
            c.send(r#"{"op":"subscribe","v":5}"#).get("subscribed").and_then(Json::as_f64),
            Some(5.0)
        );
        let del = r#"{"op":"update-batch","updates":[
            {"kind":"delete","u":5,"v":40},
            {"kind":"delete","u":6,"v":41}]}"#
            .replace('\n', " ");
        // The flush happens inline during submit, so the mate-change
        // event is written *before* the ack; accept either order.
        let m1 = c.send(&del);
        let m2 = c.read_msg();
        let (ev, ack) = if m1.get("event").is_some() { (m1, m2) } else { (m2, m1) };
        assert_eq!(ack.get("flushed").and_then(Json::as_bool), Some(true));
        assert_eq!(ev.get("event").and_then(Json::as_str), Some("mate-change"));
        assert_eq!(ev.get("v").and_then(Json::as_f64), Some(5.0));
        assert_eq!(ev.get("old").and_then(Json::as_f64), Some(40.0));
        handle.shutdown();
    }

    #[test]
    fn admission_control_answers_429_on_the_wire() {
        let g = urand(50, 150, 3);
        let cfg = DynConfig::builder(Platform::dgx_a100()).build().unwrap();
        let service = Arc::new(MatchService::new(
            "g",
            g,
            cfg,
            ServeConfig {
                coalesce_target: 10_000,
                max_pending_per_tenant: 3,
                deadline: Duration::from_secs(3600),
            },
        ));
        let handle = serve(vec![service], "127.0.0.1:0", 2).unwrap();
        let mut c = Client::connect(handle.addr);
        for i in 0..3 {
            let resp = c.send(&format!(
                r#"{{"op":"update","kind":"insert","u":{i},"v":{},"w":1.0}}"#,
                i + 20
            ));
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{i}");
        }
        let resp = c.send(r#"{"op":"update","kind":"insert","u":9,"v":29,"w":1.0}"#);
        assert_eq!(resp.get("code").and_then(Json::as_f64), Some(429.0));
        // An explicit flush clears the backlog and admits again.
        c.send(r#"{"op":"flush"}"#);
        let resp = c.send(r#"{"op":"update","kind":"insert","u":9,"v":29,"w":1.0}"#);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        handle.shutdown();
    }
}

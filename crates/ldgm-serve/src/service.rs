//! The coalescing match service: one resident dataset, one incremental
//! engine, many concurrent callers.
//!
//! ## Coalescing state machine
//!
//! Updates never touch the engine directly. They are *admitted* into a
//! pending buffer (per-tenant cap → `429`-style rejection) and the buffer
//! is *flushed* into a single [`IncrementalLd::apply_batch`] call when
//! either trigger fires:
//!
//! - **target**: the buffer reaches [`ServeConfig::coalesce_target`]
//!   entries (flushed inline by the submitting thread), or
//! - **deadline**: the oldest pending update has waited
//!   [`ServeConfig::deadline`] (flushed by the server's flusher thread).
//!
//! Arrival order is preserved end to end — the buffer is drained FIFO into
//! the batch — so the folded graph state equals the one-stream offline
//! fold, and canonical uniqueness makes the committed matching
//! bit-identical to the offline run ([`MatchService::replay_check`]
//! asserts exactly this).
//!
//! ## Snapshot discipline
//!
//! Reads are served from an `Arc`-swapped [`Snapshot`] of the last
//! *committed* state. A flush holds the engine lock while it applies the
//! batch, then builds the next snapshot and swaps it in one `RwLock`
//! write; readers either see the old epoch or the new one, never a
//! half-applied batch. Lock order is `engine → pending → snap → subs →
//! tenants`; no path acquires them in any other order.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ldgm_core::ld_gpu::{auto_tune_with, LdGpuConfig, TuneOptions};
use ldgm_dyn::{DynConfig, EdgeUpdate, IncrementalLd};
use ldgm_gpusim::json::Json;
use ldgm_gpusim::metrics::names;
use ldgm_graph::csr::{CsrGraph, VertexId};
use parking_lot::{Mutex, RwLock};

pub use ldgm_core::UNMATCHED;

/// Service knobs; everything else rides [`DynConfig`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Flush the pending buffer when it reaches this many updates
    /// (default 64 — the BENCH_dynamic amortization sweet spot).
    pub coalesce_target: usize,
    /// Flush the pending buffer when its oldest entry has waited this
    /// long (default 10 ms), so a trickle of updates still commits.
    pub deadline: Duration,
    /// Per-tenant cap on pending (admitted, not yet flushed) updates;
    /// submissions beyond it are rejected with a `429` code.
    pub max_pending_per_tenant: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            coalesce_target: 64,
            deadline: Duration::from_millis(10),
            max_pending_per_tenant: 256,
        }
    }
}

/// An immutable committed view of the matching, shared by all readers.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Committed mate array ([`UNMATCHED`] for unmatched vertices).
    pub mate: Vec<VertexId>,
    /// Total matched weight.
    pub weight: f64,
    /// Matched edges.
    pub cardinality: usize,
    /// Commit epoch: 0 after the seeding build, +1 per flushed batch.
    pub epoch: u64,
    /// Billed simulated seconds so far (engine horizon at commit).
    pub sim_time: f64,
    /// Schema-v2 gauges copied from the engine metrics at commit, so
    /// `match-info` never has to take the engine lock.
    pub gauges: Vec<(String, f64)>,
}

impl Snapshot {
    /// The committed mate of `v`, or `None` for unmatched/out-of-range.
    pub fn mate(&self, v: VertexId) -> Option<VertexId> {
        match self.mate.get(v as usize) {
            Some(&m) if m != UNMATCHED => Some(m),
            _ => None,
        }
    }
}

/// A committed mate change, delivered to subscribers of `v`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MateChange {
    /// The watched vertex.
    pub v: VertexId,
    /// Its mate before the batch ([`UNMATCHED`] if none).
    pub old: VertexId,
    /// Its mate after the batch ([`UNMATCHED`] if none).
    pub new: VertexId,
    /// Epoch of the committing batch.
    pub epoch: u64,
}

/// Ack for an admitted submission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubmitAck {
    /// Updates admitted by this call.
    pub admitted: usize,
    /// Buffer occupancy after admission (0 if the call triggered a flush).
    pub pending: usize,
    /// Whether this submission tripped the target-size flush.
    pub flushed: bool,
}

/// Admission-control rejection (`429`-style).
#[derive(Clone, Debug, PartialEq)]
pub struct AdmissionError {
    /// The rejected tenant.
    pub tenant: String,
    /// That tenant's pending updates at rejection time.
    pub pending: usize,
    /// The configured cap.
    pub limit: usize,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant '{}' has {} pending updates (limit {}): retry after a flush",
            self.tenant, self.pending, self.limit
        )
    }
}

impl std::error::Error for AdmissionError {}

/// What a single flush committed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlushSummary {
    /// Coalesced batch size.
    pub updates: usize,
    /// Epoch of the committed snapshot.
    pub epoch: u64,
    /// Simulated seconds billed for the batch.
    pub sim_time: f64,
    /// Whether the deadline (vs the size target / an explicit call)
    /// triggered it.
    pub by_deadline: bool,
}

/// Per-tenant accounting, billed from [`ldgm_gpusim::SimRuntime`] time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantStats {
    /// Updates admitted into the coalescer.
    pub submitted: u64,
    /// Updates rejected by admission control.
    pub rejected: u64,
    /// Point queries served.
    pub queries: u64,
    /// Simulated seconds billed: each flush's `BatchReport::sim_time`
    /// split across tenants proportionally to their updates in the batch.
    pub billed_sim_time: f64,
}

/// Aggregate coalescer statistics.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Committed flushes.
    pub flushes: u64,
    /// Flushes triggered by the deadline rather than the size target.
    pub deadline_flushes: u64,
    /// Total updates committed.
    pub updates_applied: u64,
    /// Every committed batch size, in commit order (the coalesced
    /// batch-size histogram's raw samples).
    pub batch_sizes: Vec<u64>,
    /// Per-tenant accounting.
    pub tenants: BTreeMap<String, TenantStats>,
}

impl ServiceStats {
    /// Mean committed batch size (0 when nothing flushed).
    pub fn mean_batch(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            0.0
        } else {
            self.updates_applied as f64 / self.batch_sizes.len() as f64
        }
    }

    /// Largest committed batch.
    pub fn max_batch(&self) -> u64 {
        self.batch_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Histogram of committed batch sizes over power-of-two buckets:
    /// `(upper_bound, count)`, used by the `ext_serve` study.
    pub fn batch_histogram(&self) -> Vec<(u64, u64)> {
        let mut hist: BTreeMap<u64, u64> = BTreeMap::new();
        for &s in &self.batch_sizes {
            *hist.entry(s.max(1).next_power_of_two()).or_insert(0) += 1;
        }
        hist.into_iter().collect()
    }
}

/// A mate-change sink; returns `false` when the subscriber is gone (its
/// connection closed), after which the service prunes it.
type SubscriberSink = Box<dyn FnMut(&MateChange) -> bool + Send>;

struct Subscription {
    v: VertexId,
    sink: SubscriberSink,
}

struct Pending {
    queue: Vec<(String, EdgeUpdate)>,
    per_tenant: BTreeMap<String, usize>,
    oldest: Option<Instant>,
}

/// One resident dataset: the incremental engine, its pending buffer, the
/// committed snapshot, subscriptions and accounting. Shareable across
/// threads behind an [`Arc`].
pub struct MatchService {
    name: String,
    base: CsrGraph,
    dyn_cfg: DynConfig,
    cfg: ServeConfig,
    engine: Mutex<IncrementalLd>,
    pending: Mutex<Pending>,
    snap: RwLock<Arc<Snapshot>>,
    subs: Mutex<Vec<Subscription>>,
    stats: Mutex<ServiceStats>,
    /// Every update committed so far, in commit order, for the offline
    /// replay check.
    history: Mutex<Vec<EdgeUpdate>>,
}

/// Copy the schema-v2 gauges the serve layer surfaces through
/// `match-info` out of the engine's live metrics.
fn copy_gauges(engine: &IncrementalLd) -> Vec<(String, f64)> {
    let m = engine.metrics();
    let mut out: Vec<(String, f64)> = [
        names::DYN_BATCHES,
        names::DYN_UPDATES_APPLIED,
        names::DYN_INSERTS,
        names::DYN_DELETES,
        names::DYN_COMPACTIONS,
    ]
    .iter()
    .map(|&n| (n.to_string(), m.counter(n) as f64))
    .collect();
    for n in ["comm.exposed_time", "comm.hidden_time"] {
        if let Some(g) = m.gauge(n) {
            out.push((n.to_string(), g));
        }
    }
    out
}

/// The default config resolver for serving: probe the static LD-GPU
/// auto-tuner grid ([`ldgm_core::ld_gpu::auto_tune_with`]) on the
/// dataset and adopt the locked communication-overlap setting — the
/// schedule knob the incremental engine shares with the static driver.
/// Platform, devices and compaction stay exactly as configured; the
/// matching is bit-identical either way (overlap is billing-only). Falls
/// back to `base` untouched when the probe cannot run (e.g. the dataset
/// overflows the platform's device memory).
pub fn resolve_dyn_config(g: &CsrGraph, base: DynConfig) -> DynConfig {
    let probe = LdGpuConfig::new(base.platform.clone()).devices(base.devices);
    // Serving only consumes the overlap verdict, so a minimal grid
    // (auto batch plan, top-1 shortlist, 2-iteration probes) suffices.
    let opts = TuneOptions {
        probe_iterations: 2,
        batch_counts: vec![None],
        stream_windows: vec![None],
        shortlist: 1,
    };
    match auto_tune_with(g, &probe, &opts) {
        Ok(report) => DynConfig { overlap: report.config.overlap, ..base },
        Err(_) => base,
    }
}

impl MatchService {
    /// [`MatchService::new`] with the tuner-resolved configuration
    /// ([`resolve_dyn_config`]) — the default boot path of `ldgm serve`.
    pub fn with_tuned_config(
        name: impl Into<String>,
        base: CsrGraph,
        dyn_cfg: DynConfig,
        cfg: ServeConfig,
    ) -> Self {
        let dyn_cfg = resolve_dyn_config(&base, dyn_cfg);
        Self::new(name, base, dyn_cfg, cfg)
    }

    /// Load `base` under `name`: runs the static seeding build (the
    /// engine's initial full stabilization) and commits epoch 0.
    pub fn new(
        name: impl Into<String>,
        base: CsrGraph,
        dyn_cfg: DynConfig,
        cfg: ServeConfig,
    ) -> Self {
        let engine = IncrementalLd::new(base.clone(), dyn_cfg.clone());
        let snap = Arc::new(Snapshot {
            mate: engine.mate_array().to_vec(),
            weight: engine.matched_weight(),
            cardinality: engine.cardinality(),
            epoch: 0,
            sim_time: engine.horizon(),
            gauges: copy_gauges(&engine),
        });
        MatchService {
            name: name.into(),
            base,
            dyn_cfg,
            cfg,
            engine: Mutex::new(engine),
            pending: Mutex::new(Pending {
                queue: Vec::new(),
                per_tenant: BTreeMap::new(),
                oldest: None,
            }),
            snap: RwLock::new(snap),
            subs: Mutex::new(Vec::new()),
            stats: Mutex::new(ServiceStats::default()),
            history: Mutex::new(Vec::new()),
        }
    }

    /// Dataset name this service answers for.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The current committed snapshot (cheap: one `RwLock` read + `Arc`
    /// clone; never blocks on an in-flight batch).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.snap.read().clone()
    }

    /// Point query: `v`'s committed mate, billed to `tenant`.
    pub fn mate(&self, tenant: &str, v: VertexId) -> (Option<VertexId>, Arc<Snapshot>) {
        let snap = self.snapshot();
        self.stats.lock().tenants.entry(tenant.to_string()).or_default().queries += 1;
        (snap.mate(v), snap)
    }

    /// Credit `n` point queries to `tenant` in one accounting write.
    ///
    /// The reactor's sharded read path answers `mate` from the committed
    /// snapshot without touching any service lock; each connection counts
    /// its queries locally and merges them here when it closes, renames
    /// its tenant, or a `stats`/`shutdown` op asks for current numbers —
    /// so the per-query hot path never crosses the stats mutex.
    pub fn credit_queries(&self, tenant: &str, n: u64) {
        if n == 0 {
            return;
        }
        self.stats.lock().tenants.entry(tenant.to_string()).or_default().queries += n;
    }

    /// Updates currently admitted but not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().queue.len()
    }

    /// Admit `updates` for `tenant`, flushing inline if the buffer
    /// reaches the coalesce target. The batch is admitted or rejected as
    /// a unit.
    pub fn submit(
        &self,
        tenant: &str,
        updates: &[EdgeUpdate],
    ) -> Result<SubmitAck, AdmissionError> {
        if updates.is_empty() {
            return Ok(SubmitAck { admitted: 0, pending: self.pending_len(), flushed: false });
        }
        let should_flush;
        {
            let mut p = self.pending.lock();
            let mine = p.per_tenant.get(tenant).copied().unwrap_or(0);
            if mine + updates.len() > self.cfg.max_pending_per_tenant {
                drop(p);
                let mut stats = self.stats.lock();
                stats.tenants.entry(tenant.to_string()).or_default().rejected +=
                    updates.len() as u64;
                return Err(AdmissionError {
                    tenant: tenant.to_string(),
                    pending: mine,
                    limit: self.cfg.max_pending_per_tenant,
                });
            }
            if p.queue.is_empty() {
                p.oldest = Some(Instant::now());
            }
            for &u in updates {
                p.queue.push((tenant.to_string(), u));
            }
            *p.per_tenant.entry(tenant.to_string()).or_insert(0) += updates.len();
            should_flush = p.queue.len() >= self.cfg.coalesce_target;
        }
        self.stats.lock().tenants.entry(tenant.to_string()).or_default().submitted +=
            updates.len() as u64;
        let flushed = if should_flush { self.flush_with(false).is_some() } else { false };
        Ok(SubmitAck {
            admitted: updates.len(),
            pending: if flushed { 0 } else { self.pending_len() },
            flushed,
        })
    }

    /// Force a flush of whatever is pending (the `flush` op and the
    /// shutdown path).
    pub fn flush(&self) -> Option<FlushSummary> {
        self.flush_with(false)
    }

    /// Flush only if the oldest pending update has exceeded the deadline;
    /// called periodically by the server's flusher thread.
    pub fn flush_due(&self) -> Option<FlushSummary> {
        let due = {
            let p = self.pending.lock();
            !p.queue.is_empty()
                && p.oldest.map(|t| t.elapsed() >= self.cfg.deadline).unwrap_or(false)
        };
        if due {
            self.flush_with(true)
        } else {
            None
        }
    }

    /// Drain the pending buffer into one engine batch and commit the next
    /// snapshot. See the module docs for the locking discipline.
    fn flush_with(&self, by_deadline: bool) -> Option<FlushSummary> {
        // Engine first: holding it serializes flushes, and the pending
        // drain below happens inside that critical section so two racing
        // flushes cannot interleave their batches out of arrival order.
        let mut engine = self.engine.lock();
        let (batch, owners) = {
            let mut p = self.pending.lock();
            if p.queue.is_empty() {
                return None;
            }
            p.oldest = None;
            p.per_tenant.clear();
            let drained = std::mem::take(&mut p.queue);
            let mut owners: BTreeMap<String, u64> = BTreeMap::new();
            let mut batch = Vec::with_capacity(drained.len());
            for (tenant, u) in drained {
                *owners.entry(tenant).or_insert(0) += 1;
                batch.push(u);
            }
            (batch, owners)
        };

        let old = self.snapshot();
        let report = engine.apply_batch(&batch);
        let next = Arc::new(Snapshot {
            mate: engine.mate_array().to_vec(),
            weight: engine.matched_weight(),
            cardinality: engine.cardinality(),
            epoch: old.epoch + 1,
            sim_time: engine.horizon(),
            gauges: copy_gauges(&engine),
        });
        *self.snap.write() = next.clone();
        self.history.lock().extend_from_slice(&batch);
        drop(engine);

        // Notify subscribers whose watched vertex changed mates.
        {
            let mut subs = self.subs.lock();
            subs.retain_mut(|s| {
                let before = old.mate.get(s.v as usize).copied().unwrap_or(UNMATCHED);
                let after = next.mate.get(s.v as usize).copied().unwrap_or(UNMATCHED);
                if before == after {
                    return true;
                }
                (s.sink)(&MateChange { v: s.v, old: before, new: after, epoch: next.epoch })
            });
        }

        // Bill the batch's sim-time across tenants proportionally.
        {
            let mut stats = self.stats.lock();
            stats.flushes += 1;
            if by_deadline {
                stats.deadline_flushes += 1;
            }
            stats.updates_applied += batch.len() as u64;
            stats.batch_sizes.push(batch.len() as u64);
            let total = batch.len() as f64;
            for (tenant, count) in owners {
                let t = stats.tenants.entry(tenant).or_default();
                t.billed_sim_time += report.sim_time * count as f64 / total;
            }
        }

        Some(FlushSummary {
            updates: batch.len(),
            epoch: next.epoch,
            sim_time: report.sim_time,
            by_deadline,
        })
    }

    /// Watch `v`: `sink` is invoked (from the flushing thread) for every
    /// committed batch that changes `v`'s mate, until it returns `false`.
    pub fn subscribe(&self, v: VertexId, sink: SubscriberSink) {
        self.subs.lock().push(Subscription { v, sink });
    }

    /// Live subscription count (pruned sinks excluded).
    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().len()
    }

    /// A copy of the aggregate coalescer/tenant statistics.
    pub fn stats(&self) -> ServiceStats {
        self.stats.lock().clone()
    }

    /// The offline replay check: rebuild a fresh engine from the original
    /// base graph, apply the full committed history as one batch, and
    /// compare mate arrays bit-for-bit. Canonical uniqueness says they
    /// must agree no matter how the live traffic was coalesced.
    pub fn replay_check(&self) -> Result<(), String> {
        let history = self.history.lock().clone();
        // Flush anything still pending so the comparison covers it.
        // (flush() appends to history; re-read after.)
        self.flush();
        let history = if history.len() == self.history.lock().len() {
            history
        } else {
            self.history.lock().clone()
        };
        let mut offline = IncrementalLd::new(self.base.clone(), self.dyn_cfg.clone());
        if !history.is_empty() {
            offline.apply_batch(&history);
        }
        let snap = self.snapshot();
        if offline.mate_array() != snap.mate.as_slice() {
            let diverged =
                offline.mate_array().iter().zip(snap.mate.iter()).filter(|(a, b)| a != b).count();
            return Err(format!(
                "replay diverged on {} of {} vertices after {} updates",
                diverged,
                snap.mate.len(),
                history.len()
            ));
        }
        Ok(())
    }

    /// `match-info` as a wire object (also used by the CLI summary).
    pub fn info_json(&self) -> Json {
        let snap = self.snapshot();
        let mut gauges = Json::object();
        for (k, v) in &snap.gauges {
            gauges.set(k.clone(), *v);
        }
        Json::object()
            .with("dataset", self.name.clone())
            .with("num_vertices", snap.mate.len())
            .with("weight", snap.weight)
            .with("size", snap.cardinality)
            .with("epoch", snap.epoch)
            .with("sim_time", snap.sim_time)
            .with("pending", self.pending_len())
            .with("gauges", gauges)
    }

    /// `stats` as a wire object.
    pub fn stats_json(&self) -> Json {
        let s = self.stats();
        let mut tenants = Json::object();
        for (name, t) in &s.tenants {
            tenants.set(
                name.clone(),
                Json::object()
                    .with("submitted", t.submitted)
                    .with("rejected", t.rejected)
                    .with("queries", t.queries)
                    .with("billed_sim_time", t.billed_sim_time),
            );
        }
        let hist: Vec<Json> = s
            .batch_histogram()
            .into_iter()
            .map(|(le, n)| Json::object().with("le", le).with("count", n))
            .collect();
        Json::object()
            .with("dataset", self.name.clone())
            .with("flushes", s.flushes)
            .with("deadline_flushes", s.deadline_flushes)
            .with("updates_applied", s.updates_applied)
            .with("mean_batch", s.mean_batch())
            .with("max_batch", s.max_batch())
            .with("batch_histogram", hist)
            .with("subscribers", self.subscriber_count())
            .with("tenants", tenants)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_gpusim::Platform;
    use ldgm_graph::gen::urand;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    fn cfg() -> DynConfig {
        DynConfig::builder(Platform::dgx_a100()).devices(2).build().unwrap()
    }

    fn svc(target: usize) -> MatchService {
        MatchService::new(
            "t",
            urand(120, 480, 5),
            cfg(),
            ServeConfig { coalesce_target: target, ..ServeConfig::default() },
        )
    }

    #[test]
    fn boots_with_tuner_resolved_config() {
        let g = urand(120, 480, 5);
        let resolved = resolve_dyn_config(&g, cfg());
        assert_eq!(resolved.devices, cfg().devices, "tuning only moves schedule knobs");
        let tuned =
            MatchService::with_tuned_config("tuned", g.clone(), cfg(), ServeConfig::default());
        let plain = MatchService::new("plain", g, cfg(), ServeConfig::default());
        // The resolver only moves billing/schedule knobs, so the seeded
        // matching is bit-identical to the untuned boot.
        assert_eq!(tuned.snapshot().mate, plain.snapshot().mate);
        assert!(tuned.snapshot().sim_time > 0.0);
    }

    #[test]
    fn seeds_from_the_static_engine() {
        let g = urand(100, 400, 1);
        let s = MatchService::new("seed", g.clone(), cfg(), ServeConfig::default());
        let snap = s.snapshot();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.mate, ldgm_core::ld_seq::ld_seq(&g).mate_array());
        assert!(snap.sim_time > 0.0, "the seeding build must be billed");
        assert!(snap.weight > 0.0);
    }

    #[test]
    fn updates_coalesce_until_the_target() {
        let s = svc(4);
        for i in 0..3u32 {
            let ack = s
                .submit("a", &[EdgeUpdate::Insert { u: i, v: i + 50, w: 5.0 + i as f64 }])
                .unwrap();
            assert!(!ack.flushed);
            assert_eq!(ack.pending, i as usize + 1);
            assert_eq!(s.snapshot().epoch, 0, "nothing commits before the target");
        }
        let ack = s.submit("a", &[EdgeUpdate::Insert { u: 3, v: 53, w: 9.0 }]).unwrap();
        assert!(ack.flushed);
        assert_eq!(ack.pending, 0);
        let snap = s.snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.mate(3), Some(53), "a heavy fresh edge must match");
        let stats = s.stats();
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.batch_sizes, vec![4]);
        s.replay_check().unwrap();
    }

    #[test]
    fn admission_control_rejects_over_cap() {
        let s = MatchService::new(
            "adm",
            urand(60, 200, 2),
            cfg(),
            ServeConfig {
                coalesce_target: 1000, // never auto-flush
                max_pending_per_tenant: 5,
                ..ServeConfig::default()
            },
        );
        let upd = |i: u32| EdgeUpdate::Insert { u: i % 30, v: 30 + i % 30, w: 1.0 };
        for i in 0..5 {
            s.submit("greedy", &[upd(i)]).unwrap();
        }
        let err = s.submit("greedy", &[upd(5)]).expect_err("cap must reject");
        assert_eq!(err.pending, 5);
        assert_eq!(err.limit, 5);
        assert!(err.to_string().contains("greedy"));
        // Other tenants are unaffected; a flush clears the cap.
        s.submit("polite", &[upd(6)]).unwrap();
        s.flush().unwrap();
        s.submit("greedy", &[upd(7)]).unwrap();
        let stats = s.stats();
        assert_eq!(stats.tenants["greedy"].rejected, 1);
        assert_eq!(stats.tenants["greedy"].submitted, 6);
    }

    #[test]
    fn tenant_billing_splits_proportionally() {
        let s = svc(1000);
        let ins = |u: u32, v: u32| EdgeUpdate::Insert { u, v, w: 2.0 };
        s.submit("a", &[ins(0, 60), ins(1, 61), ins(2, 62)]).unwrap();
        s.submit("b", &[ins(3, 63)]).unwrap();
        let sum = s.flush().unwrap();
        assert_eq!(sum.updates, 4);
        let stats = s.stats();
        let (a, b) = (stats.tenants["a"].billed_sim_time, stats.tenants["b"].billed_sim_time);
        assert!(a > 0.0 && b > 0.0);
        assert!((a / b - 3.0).abs() < 1e-9, "3:1 split, got {a} vs {b}");
        assert!((a + b - sum.sim_time).abs() < 1e-12 * sum.sim_time.max(1.0));
    }

    #[test]
    fn subscriptions_fire_on_commit_and_prune_dead_sinks() {
        let s = svc(1000);
        let snap = s.snapshot();
        // Find a matched pair and outbid it so mates demonstrably change.
        let u = (0..snap.mate.len() as u32).find(|&u| snap.mate(u).is_some()).unwrap();
        let (tx, rx) = mpsc::channel();
        s.subscribe(
            u,
            Box::new(move |c| {
                let _ = tx.send(*c);
                true
            }),
        );
        let dead_calls = Arc::new(AtomicUsize::new(0));
        let dc = dead_calls.clone();
        s.subscribe(
            u,
            Box::new(move |_| {
                dc.fetch_add(1, Ordering::SeqCst);
                false // simulate a hung-up connection
            }),
        );
        assert_eq!(s.subscriber_count(), 2);
        s.submit("a", &[EdgeUpdate::Insert { u, v: snap.mate(u).unwrap(), w: 1e6 }]).unwrap();
        // Reweighting the matched edge up does not change mates: no event.
        s.flush();
        // Now delete it: u's mate must change.
        s.submit("a", &[EdgeUpdate::Delete { u, v: snap.mate(u).unwrap() }]).unwrap();
        let flushed = s.flush().unwrap();
        let ev = rx.try_recv().expect("mate change must notify");
        assert_eq!(ev.v, u);
        assert_eq!(ev.old, snap.mate(u).unwrap());
        assert_ne!(ev.new, ev.old);
        assert_eq!(ev.epoch, flushed.epoch);
        assert_eq!(dead_calls.load(Ordering::SeqCst), 1);
        assert_eq!(s.subscriber_count(), 1, "dead sink must be pruned");
        s.replay_check().unwrap();
    }

    #[test]
    fn deadline_flush_commits_stragglers() {
        let s = MatchService::new(
            "dl",
            urand(80, 300, 3),
            cfg(),
            ServeConfig {
                coalesce_target: 1000,
                deadline: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        s.submit("a", &[EdgeUpdate::Insert { u: 0, v: 40, w: 99.0 }]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut flushed = None;
        while flushed.is_none() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
            flushed = s.flush_due();
        }
        let f = flushed.expect("deadline flush never fired");
        assert!(f.by_deadline);
        assert_eq!(s.snapshot().mate(0), Some(40));
        assert_eq!(s.stats().deadline_flushes, 1);
    }

    #[test]
    fn info_and_stats_json_have_wire_shape() {
        let s = svc(2);
        s.submit(
            "a",
            &[
                EdgeUpdate::Insert { u: 0, v: 70, w: 3.0 },
                EdgeUpdate::Insert { u: 1, v: 71, w: 3.0 },
            ],
        )
        .unwrap();
        let info = s.info_json();
        assert_eq!(info.get("dataset").and_then(Json::as_str), Some("t"));
        assert_eq!(info.get("epoch").and_then(Json::as_f64), Some(1.0));
        assert!(info.get("weight").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(info.get("gauges").unwrap().get(names::DYN_BATCHES).is_some());
        let stats = s.stats_json();
        assert_eq!(stats.get("flushes").and_then(Json::as_f64), Some(1.0));
        assert_eq!(stats.get("mean_batch").and_then(Json::as_f64), Some(2.0));
        assert!(!stats.get("batch_histogram").unwrap().as_array().unwrap().is_empty());
        // Round-trip through the hand-rolled parser (what clients do).
        let parsed = ldgm_gpusim::json::parse(&stats.to_string_compact()).unwrap();
        assert_eq!(parsed.get("updates_applied").and_then(Json::as_f64), Some(2.0));
    }
}

//! The line-delimited JSON wire protocol.
//!
//! Each client line is one JSON object with an `"op"` field; each server
//! line is one JSON object. Responses carry `"ok": true|false` (failures
//! add an HTTP-flavored `"code"` and an `"error"` message); asynchronous
//! subscription notifications instead carry an `"event"` field so clients
//! can tell them apart from responses on the same stream.
//!
//! Requests:
//!
//! | op             | fields                                   | response |
//! |----------------|------------------------------------------|----------|
//! | `hello`        | `tenant`                                 | ack; sets the connection's billing id |
//! | `mate`         | `v`                                      | `mate` (or `null`), `epoch` |
//! | `match-info`   | —                                        | weight, size, epoch, pending, schema-v2 gauges |
//! | `update`       | `kind` (`insert`/`delete`), `u`, `v`, `w`| ack with `pending`/`flushed`, or `429` |
//! | `update-batch` | `updates`: array of update objects       | same |
//! | `subscribe`    | `v`                                      | ack; later `mate-change` events |
//! | `flush`        | —                                        | forces a coalescer flush |
//! | `stats`        | —                                        | coalescer + per-tenant accounting |
//! | `shutdown`     | —                                        | final flush + offline replay check, then the server exits |
//!
//! Every request may carry `"dataset": <name>` to address one of several
//! resident datasets; it defaults to the first one loaded.

use std::ops::Range;

use ldgm_dyn::EdgeUpdate;
use ldgm_gpusim::json::{self, Json};
use ldgm_graph::csr::VertexId;

/// Default cap on one wire frame (one line), in bytes. Anything longer is
/// answered with [`ERR_FRAME_TOO_LARGE`] and discarded up to the next
/// newline; the connection stays alive.
pub const MAX_FRAME_LEN: usize = 256 * 1024;

/// Stable error tag carried in the `error` message of a `413` response to
/// an oversized frame, so clients can match it without parsing prose.
pub const ERR_FRAME_TOO_LARGE: &str = "ERR_FRAME_TOO_LARGE";

/// Build the `413` response for a frame that blew past `max` bytes.
pub fn frame_too_large_response(len: usize, max: usize) -> Json {
    err_response(413, format!("{ERR_FRAME_TOO_LARGE}: frame of {len}+ bytes exceeds cap {max}"))
}

/// A decoded request operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Declare the connection's tenant (billing) id.
    Hello {
        /// Tenant id billed for subsequent requests on this connection.
        tenant: String,
    },
    /// Point query: the mate of vertex `v` in the committed snapshot.
    Mate {
        /// Queried vertex.
        v: VertexId,
    },
    /// Matching summary: weight, cardinality, epoch, gauges.
    MatchInfo,
    /// A single edge update, queued into the coalescer.
    Update {
        /// The update.
        update: EdgeUpdate,
    },
    /// Several updates queued atomically (admitted or rejected together).
    UpdateBatch {
        /// The updates, in client order.
        updates: Vec<EdgeUpdate>,
    },
    /// Subscribe to mate-change events of vertex `v`.
    Subscribe {
        /// Watched vertex.
        v: VertexId,
    },
    /// Force a coalescer flush now.
    Flush,
    /// Coalescer and per-tenant accounting counters.
    Stats,
    /// Flush, run the offline replay check, report, and stop the server.
    Shutdown,
}

/// A decoded request line: the operation plus its optional dataset route.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedRequest {
    /// Target dataset name; `None` selects the server's default dataset.
    pub dataset: Option<String>,
    /// The operation.
    pub request: Request,
}

fn get_u32(j: &Json, key: &str) -> Result<u32, String> {
    let v = j
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric '{key}'"))?;
    if v < 0.0 || v.fract() != 0.0 || v > u32::MAX as f64 {
        return Err(format!("'{key}' must be a u32, got {v}"));
    }
    Ok(v as u32)
}

/// Decode one update object (`{"kind": "insert"|"delete", "u", "v", "w"}`).
fn parse_update(j: &Json) -> Result<EdgeUpdate, String> {
    let kind = j.get("kind").and_then(Json::as_str).ok_or("missing 'kind'")?;
    let u = get_u32(j, "u")?;
    let v = get_u32(j, "v")?;
    match kind {
        "insert" => {
            let w = j
                .get("w")
                .and_then(Json::as_f64)
                .ok_or_else(|| "insert requires a numeric 'w'".to_string())?;
            Ok(EdgeUpdate::Insert { u, v, w })
        }
        "delete" => Ok(EdgeUpdate::Delete { u, v }),
        other => Err(format!("unknown update kind '{other}' (valid: insert, delete)")),
    }
}

impl ParsedRequest {
    /// Parse one request line. Errors are protocol-level (malformed JSON,
    /// unknown op, missing fields) and map to a `400` response.
    pub fn parse(line: &str) -> Result<ParsedRequest, String> {
        let j = json::parse(line).map_err(|e| e.to_string())?;
        let dataset = j.get("dataset").and_then(Json::as_str).map(str::to_string);
        let op = j.get("op").and_then(Json::as_str).ok_or("missing 'op'")?;
        let request = match op {
            "hello" => Request::Hello {
                tenant: j
                    .get("tenant")
                    .and_then(Json::as_str)
                    .ok_or("hello requires 'tenant'")?
                    .to_string(),
            },
            "mate" => Request::Mate { v: get_u32(&j, "v")? },
            "match-info" => Request::MatchInfo,
            "update" => Request::Update { update: parse_update(&j)? },
            "update-batch" => {
                let items = j.get("updates").and_then(Json::as_array).ok_or("missing 'updates'")?;
                let updates = items.iter().map(parse_update).collect::<Result<Vec<_>, String>>()?;
                Request::UpdateBatch { updates }
            }
            "subscribe" => Request::Subscribe { v: get_u32(&j, "v")? },
            "flush" => Request::Flush,
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            other => {
                return Err(format!(
                    "unknown op '{other}' (valid: hello, mate, match-info, update, update-batch, \
                 subscribe, flush, stats, shutdown)"
                ))
            }
        };
        Ok(ParsedRequest { dataset, request })
    }
}

/// Encode an update for the wire (the loadgen and tests use this).
pub fn update_to_json(u: &EdgeUpdate) -> Json {
    match *u {
        EdgeUpdate::Insert { u, v, w } => {
            Json::object().with("kind", "insert").with("u", u).with("v", v).with("w", w)
        }
        EdgeUpdate::Delete { u, v } => {
            Json::object().with("kind", "delete").with("u", u).with("v", v)
        }
    }
}

/// A success response skeleton (`{"ok": true}`), extended per-op.
pub fn ok_response() -> Json {
    Json::object().with("ok", true)
}

/// A failure response with an HTTP-flavored status code.
pub fn err_response(code: u32, message: impl Into<String>) -> Json {
    Json::object().with("ok", false).with("code", code).with("error", message.into())
}

/// One item out of [`FrameSplitter::next`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SplitFrame {
    /// A complete line (newline excluded); slice it out of the splitter
    /// with [`FrameSplitter::slice`].
    Line(Range<usize>),
    /// The frame in progress exceeded the cap; `len` bytes were dropped
    /// and input is discarded up to the next newline.
    TooLarge {
        /// Bytes seen for the oversized frame so far (≥ the cap).
        len: usize,
    },
}

/// Incremental newline-delimited frame splitter over a reusable buffer.
///
/// [`FrameSplitter::push`] appends raw socket bytes (any chunking — the
/// reassembly is byte-chunking-invariant, property-tested in
/// `tests/frame_splitter.rs`); [`FrameSplitter::next`] yields complete
/// frames in order. The buffer compacts itself on `push`, so steady-state
/// operation allocates nothing once the buffer has grown to the largest
/// frame seen.
///
/// Frames longer than the cap surface as [`SplitFrame::TooLarge`] exactly
/// once, immediately when the cap is crossed (not only when the newline
/// finally arrives), and the splitter silently discards input until the
/// frame's terminating newline — the connection keeps working.
#[derive(Debug)]
pub struct FrameSplitter {
    buf: Vec<u8>,
    /// Start of the first unconsumed frame.
    start: usize,
    /// Bytes `< scanned` contain no unexamined newline.
    scanned: usize,
    /// Discarding an oversized frame up to its newline.
    discarding: bool,
    /// Bytes already dropped for the oversized frame being discarded.
    discarded: usize,
    max_frame: usize,
}

impl FrameSplitter {
    /// A splitter enforcing `max_frame` bytes per line.
    pub fn new(max_frame: usize) -> FrameSplitter {
        assert!(max_frame > 0, "frame cap must be positive");
        FrameSplitter {
            buf: Vec::new(),
            start: 0,
            scanned: 0,
            discarding: false,
            discarded: 0,
            max_frame,
        }
    }

    /// Append raw bytes from the socket.
    pub fn push(&mut self, data: &[u8]) {
        // Compact: drop consumed prefix before growing.
        if self.start > 0 {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.scanned -= self.start;
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed (diagnostic).
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// The next complete frame, if one is buffered.
    ///
    /// Deliberately *not* an `Iterator` impl: the returned ranges are
    /// invalidated by the next [`FrameSplitter::push`], so handing the
    /// splitter to iterator adapters that buffer items would be a trap.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<SplitFrame> {
        loop {
            if self.discarding {
                match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                    Some(off) => {
                        // Oversized frame fully skipped; resume normal
                        // framing after its newline.
                        let nl = self.scanned + off;
                        self.discarding = false;
                        self.discarded = 0;
                        self.start = nl + 1;
                        self.scanned = nl + 1;
                        continue;
                    }
                    None => {
                        self.discarded += self.buf.len() - self.scanned;
                        // Everything pending belongs to the oversized
                        // frame: drop it now so memory stays bounded.
                        self.buf.clear();
                        self.start = 0;
                        self.scanned = 0;
                        return None;
                    }
                }
            }
            match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                Some(off) => {
                    let nl = self.scanned + off;
                    let frame = self.start..nl;
                    self.scanned = nl + 1;
                    self.start = nl + 1;
                    if frame.len() > self.max_frame {
                        // Newline arrived in the same chunk the cap was
                        // crossed in: reject, no discard phase needed.
                        return Some(SplitFrame::TooLarge { len: frame.len() });
                    }
                    return Some(SplitFrame::Line(frame));
                }
                None => {
                    self.scanned = self.buf.len();
                    if self.buf.len() - self.start > self.max_frame {
                        let len = self.buf.len() - self.start;
                        self.discarding = true;
                        self.discarded = len;
                        self.buf.clear();
                        self.start = 0;
                        self.scanned = 0;
                        return Some(SplitFrame::TooLarge { len });
                    }
                    return None;
                }
            }
        }
    }

    /// Resolve a [`SplitFrame::Line`] range to its bytes. Only valid
    /// until the next [`FrameSplitter::push`].
    pub fn slice(&self, r: Range<usize>) -> &[u8] {
        &self.buf[r]
    }
}

/// Allocation-free serializers (and a fast-path parser) for the hot wire
/// messages. Output is byte-identical to the [`Json`] builder path — the
/// unit tests below pin that equivalence — so switching a response onto
/// the fast path can never change the wire protocol.
pub mod wire {
    /// Append `v`'s decimal digits.
    pub fn push_u64(out: &mut Vec<u8>, v: u64) {
        let mut digits = [0u8; 20];
        let mut i = digits.len();
        let mut v = v;
        loop {
            i -= 1;
            digits[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        out.extend_from_slice(&digits[i..]);
    }

    /// `{"ok":true,"v":V,"mate":M|null,"epoch":E}` + newline — the hot
    /// `mate` response, written straight into the send buffer.
    pub fn mate_response(out: &mut Vec<u8>, v: u32, mate: Option<u32>, epoch: u64) {
        out.extend_from_slice(b"{\"ok\":true,\"v\":");
        push_u64(out, v as u64);
        out.extend_from_slice(b",\"mate\":");
        match mate {
            Some(m) => push_u64(out, m as u64),
            None => out.extend_from_slice(b"null"),
        }
        out.extend_from_slice(b",\"epoch\":");
        push_u64(out, epoch);
        out.extend_from_slice(b"}\n");
    }

    /// `{"ok":true,"admitted":A,"pending":P,"flushed":B}` + newline —
    /// the hot `update`/`update-batch` ack.
    pub fn update_ack(out: &mut Vec<u8>, admitted: u64, pending: u64, flushed: bool) {
        out.extend_from_slice(b"{\"ok\":true,\"admitted\":");
        push_u64(out, admitted);
        out.extend_from_slice(b",\"pending\":");
        push_u64(out, pending);
        out.extend_from_slice(b",\"flushed\":");
        out.extend_from_slice(if flushed { b"true" } else { b"false" });
        out.extend_from_slice(b"}\n");
    }

    /// Parse exactly `{"op":"mate","v":DIGITS}` (the compact form every
    /// loadgen/client library emits); anything else — extra whitespace,
    /// a `dataset` route, float or out-of-range `v` — returns `None` and
    /// falls back to the full parser.
    pub fn parse_mate_fast(line: &[u8]) -> Option<u32> {
        const PREFIX: &[u8] = b"{\"op\":\"mate\",\"v\":";
        let rest = line.strip_prefix(PREFIX)?;
        let rest = rest.strip_suffix(b"}")?;
        if rest.is_empty() || rest.len() > 10 || (rest.len() > 1 && rest[0] == b'0') {
            return None;
        }
        let mut v: u64 = 0;
        for &b in rest {
            if !b.is_ascii_digit() {
                return None;
            }
            v = v * 10 + (b - b'0') as u64;
        }
        u32::try_from(v).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let cases = [
            (r#"{"op":"hello","tenant":"t1"}"#, Request::Hello { tenant: "t1".into() }),
            (r#"{"op":"mate","v":7}"#, Request::Mate { v: 7 }),
            (r#"{"op":"match-info"}"#, Request::MatchInfo),
            (
                r#"{"op":"update","kind":"insert","u":1,"v":2,"w":0.5}"#,
                Request::Update { update: EdgeUpdate::Insert { u: 1, v: 2, w: 0.5 } },
            ),
            (
                r#"{"op":"update","kind":"delete","u":3,"v":4}"#,
                Request::Update { update: EdgeUpdate::Delete { u: 3, v: 4 } },
            ),
            (r#"{"op":"subscribe","v":0}"#, Request::Subscribe { v: 0 }),
            (r#"{"op":"flush"}"#, Request::Flush),
            (r#"{"op":"stats"}"#, Request::Stats),
            (r#"{"op":"shutdown"}"#, Request::Shutdown),
        ];
        for (line, want) in cases {
            let got = ParsedRequest::parse(line).unwrap();
            assert_eq!(got.request, want, "{line}");
            assert_eq!(got.dataset, None, "{line}");
        }
    }

    #[test]
    fn parses_batches_and_dataset_routes() {
        let line = r#"{"op":"update-batch","dataset":"g2","updates":[
            {"kind":"insert","u":0,"v":1,"w":2.0},{"kind":"delete","u":1,"v":2}]}"#;
        let got = ParsedRequest::parse(line).unwrap();
        assert_eq!(got.dataset.as_deref(), Some("g2"));
        assert_eq!(
            got.request,
            Request::UpdateBatch {
                updates: vec![
                    EdgeUpdate::Insert { u: 0, v: 1, w: 2.0 },
                    EdgeUpdate::Delete { u: 1, v: 2 },
                ]
            }
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for line in [
            "not json",
            r#"{"v":3}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"mate"}"#,
            r#"{"op":"mate","v":-1}"#,
            r#"{"op":"mate","v":1.5}"#,
            r#"{"op":"update","kind":"insert","u":0,"v":1}"#,
            r#"{"op":"update","kind":"upsert","u":0,"v":1}"#,
            r#"{"op":"hello"}"#,
        ] {
            assert!(ParsedRequest::parse(line).is_err(), "{line} should not parse");
        }
    }

    #[test]
    fn update_round_trips_through_json() {
        for u in [EdgeUpdate::Insert { u: 9, v: 4, w: 1.25 }, EdgeUpdate::Delete { u: 2, v: 8 }] {
            let line = update_to_json(&u).with("op", "update").to_string_compact();
            let got = ParsedRequest::parse(&line).unwrap();
            assert_eq!(got.request, Request::Update { update: u });
        }
    }

    #[test]
    fn splitter_reassembles_frames_across_pushes() {
        let mut s = FrameSplitter::new(64);
        s.push(b"{\"op\":\"sta");
        assert_eq!(s.next(), None);
        s.push(b"ts\"}\n{\"op\":\"flush\"}\n{\"op\":");
        let f1 = s.next().expect("first frame complete");
        let SplitFrame::Line(r) = f1 else { panic!("line expected") };
        assert_eq!(s.slice(r), b"{\"op\":\"stats\"}");
        let SplitFrame::Line(r) = s.next().unwrap() else { panic!() };
        assert_eq!(s.slice(r), b"{\"op\":\"flush\"}");
        assert_eq!(s.next(), None, "third frame still partial");
        s.push(b"\"shutdown\"}\n");
        let SplitFrame::Line(r) = s.next().unwrap() else { panic!() };
        assert_eq!(s.slice(r), b"{\"op\":\"shutdown\"}");
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn splitter_caps_oversized_frames_and_recovers() {
        let mut s = FrameSplitter::new(8);
        // Cap crossed before any newline: error surfaces immediately…
        s.push(b"0123456789abc");
        assert!(matches!(s.next(), Some(SplitFrame::TooLarge { len: 13 })));
        assert_eq!(s.next(), None);
        // …and everything up to the newline is discarded silently.
        s.push(b"defgh\nok\n");
        let SplitFrame::Line(r) = s.next().unwrap() else { panic!() };
        assert_eq!(s.slice(r), b"ok");
        // Newline and cap-crossing in the same chunk also reject.
        s.push(b"0123456789\nfine\n");
        assert!(matches!(s.next(), Some(SplitFrame::TooLarge { len: 10 })));
        let SplitFrame::Line(r) = s.next().unwrap() else { panic!() };
        assert_eq!(s.slice(r), b"fine");
        let resp = frame_too_large_response(13, 8);
        assert_eq!(resp.get("code").and_then(Json::as_f64), Some(413.0));
        assert!(resp.get("error").and_then(Json::as_str).unwrap().contains(ERR_FRAME_TOO_LARGE));
    }

    #[test]
    fn wire_serializers_match_the_json_builder_byte_for_byte() {
        for (v, mate, epoch) in
            [(0u32, Some(3u32), 0u64), (7, None, 1), (4_294_967_295, Some(0), u64::MAX)]
        {
            let mut fast = Vec::new();
            wire::mate_response(&mut fast, v, mate, epoch);
            let mate_json = match mate {
                Some(m) => Json::from(m),
                None => Json::Null,
            };
            let slow = ok_response().with("v", v).with("mate", mate_json).with("epoch", epoch);
            let epoch_note = format!("epoch {epoch}");
            if epoch < 9_000_000_000_000_000 {
                // Json prints integral f64 as integers only below 9e15;
                // the hot path never crosses it (epochs count flushes).
                let mut line = slow.to_string_compact();
                line.push('\n');
                assert_eq!(fast, line.into_bytes(), "{epoch_note}");
            }
        }
        for (admitted, pending, flushed) in [(1u64, 0u64, true), (64, 63, false), (0, 0, false)] {
            let mut fast = Vec::new();
            wire::update_ack(&mut fast, admitted, pending, flushed);
            let mut line = ok_response()
                .with("admitted", admitted)
                .with("pending", pending)
                .with("flushed", flushed)
                .to_string_compact();
            line.push('\n');
            assert_eq!(fast, line.into_bytes());
        }
    }

    #[test]
    fn fast_mate_parser_agrees_with_the_full_parser() {
        for v in [0u32, 1, 42, 99_999, u32::MAX] {
            let line = format!("{{\"op\":\"mate\",\"v\":{v}}}");
            assert_eq!(wire::parse_mate_fast(line.as_bytes()), Some(v), "{line}");
            let full = ParsedRequest::parse(&line).unwrap();
            assert_eq!(full.request, Request::Mate { v });
        }
        // Everything else must fall back (None), never misparse.
        for line in [
            "{\"op\": \"mate\", \"v\": 2}", // spaced (python json.dumps)
            "{\"op\":\"mate\",\"v\":1,\"dataset\":\"g\"}", // routed
            "{\"op\":\"mate\",\"v\":1.5}",
            "{\"op\":\"mate\",\"v\":-1}",
            "{\"op\":\"mate\",\"v\":4294967296}", // u32 overflow
            "{\"op\":\"mate\",\"v\":007}",        // leading zeros
            "{\"op\":\"mate\",\"v\":}",
            "{\"op\":\"stats\"}",
        ] {
            assert_eq!(wire::parse_mate_fast(line.as_bytes()), None, "{line}");
        }
    }

    #[test]
    fn response_helpers_have_the_documented_shape() {
        let ok = ok_response().with("mate", 3u32);
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        let err = err_response(429, "too many pending updates");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("code").and_then(Json::as_f64), Some(429.0));
        assert!(err.get("error").and_then(Json::as_str).unwrap().contains("pending"));
    }
}

//! The line-delimited JSON wire protocol.
//!
//! Each client line is one JSON object with an `"op"` field; each server
//! line is one JSON object. Responses carry `"ok": true|false` (failures
//! add an HTTP-flavored `"code"` and an `"error"` message); asynchronous
//! subscription notifications instead carry an `"event"` field so clients
//! can tell them apart from responses on the same stream.
//!
//! Requests:
//!
//! | op             | fields                                   | response |
//! |----------------|------------------------------------------|----------|
//! | `hello`        | `tenant`                                 | ack; sets the connection's billing id |
//! | `mate`         | `v`                                      | `mate` (or `null`), `epoch` |
//! | `match-info`   | —                                        | weight, size, epoch, pending, schema-v2 gauges |
//! | `update`       | `kind` (`insert`/`delete`), `u`, `v`, `w`| ack with `pending`/`flushed`, or `429` |
//! | `update-batch` | `updates`: array of update objects       | same |
//! | `subscribe`    | `v`                                      | ack; later `mate-change` events |
//! | `flush`        | —                                        | forces a coalescer flush |
//! | `stats`        | —                                        | coalescer + per-tenant accounting |
//! | `shutdown`     | —                                        | final flush + offline replay check, then the server exits |
//!
//! Every request may carry `"dataset": <name>` to address one of several
//! resident datasets; it defaults to the first one loaded.

use ldgm_dyn::EdgeUpdate;
use ldgm_gpusim::json::{self, Json};
use ldgm_graph::csr::VertexId;

/// A decoded request operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Declare the connection's tenant (billing) id.
    Hello {
        /// Tenant id billed for subsequent requests on this connection.
        tenant: String,
    },
    /// Point query: the mate of vertex `v` in the committed snapshot.
    Mate {
        /// Queried vertex.
        v: VertexId,
    },
    /// Matching summary: weight, cardinality, epoch, gauges.
    MatchInfo,
    /// A single edge update, queued into the coalescer.
    Update {
        /// The update.
        update: EdgeUpdate,
    },
    /// Several updates queued atomically (admitted or rejected together).
    UpdateBatch {
        /// The updates, in client order.
        updates: Vec<EdgeUpdate>,
    },
    /// Subscribe to mate-change events of vertex `v`.
    Subscribe {
        /// Watched vertex.
        v: VertexId,
    },
    /// Force a coalescer flush now.
    Flush,
    /// Coalescer and per-tenant accounting counters.
    Stats,
    /// Flush, run the offline replay check, report, and stop the server.
    Shutdown,
}

/// A decoded request line: the operation plus its optional dataset route.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedRequest {
    /// Target dataset name; `None` selects the server's default dataset.
    pub dataset: Option<String>,
    /// The operation.
    pub request: Request,
}

fn get_u32(j: &Json, key: &str) -> Result<u32, String> {
    let v = j
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric '{key}'"))?;
    if v < 0.0 || v.fract() != 0.0 || v > u32::MAX as f64 {
        return Err(format!("'{key}' must be a u32, got {v}"));
    }
    Ok(v as u32)
}

/// Decode one update object (`{"kind": "insert"|"delete", "u", "v", "w"}`).
fn parse_update(j: &Json) -> Result<EdgeUpdate, String> {
    let kind = j.get("kind").and_then(Json::as_str).ok_or("missing 'kind'")?;
    let u = get_u32(j, "u")?;
    let v = get_u32(j, "v")?;
    match kind {
        "insert" => {
            let w = j
                .get("w")
                .and_then(Json::as_f64)
                .ok_or_else(|| "insert requires a numeric 'w'".to_string())?;
            Ok(EdgeUpdate::Insert { u, v, w })
        }
        "delete" => Ok(EdgeUpdate::Delete { u, v }),
        other => Err(format!("unknown update kind '{other}' (valid: insert, delete)")),
    }
}

impl ParsedRequest {
    /// Parse one request line. Errors are protocol-level (malformed JSON,
    /// unknown op, missing fields) and map to a `400` response.
    pub fn parse(line: &str) -> Result<ParsedRequest, String> {
        let j = json::parse(line).map_err(|e| e.to_string())?;
        let dataset = j.get("dataset").and_then(Json::as_str).map(str::to_string);
        let op = j.get("op").and_then(Json::as_str).ok_or("missing 'op'")?;
        let request = match op {
            "hello" => Request::Hello {
                tenant: j
                    .get("tenant")
                    .and_then(Json::as_str)
                    .ok_or("hello requires 'tenant'")?
                    .to_string(),
            },
            "mate" => Request::Mate { v: get_u32(&j, "v")? },
            "match-info" => Request::MatchInfo,
            "update" => Request::Update { update: parse_update(&j)? },
            "update-batch" => {
                let items = j.get("updates").and_then(Json::as_array).ok_or("missing 'updates'")?;
                let updates = items.iter().map(parse_update).collect::<Result<Vec<_>, String>>()?;
                Request::UpdateBatch { updates }
            }
            "subscribe" => Request::Subscribe { v: get_u32(&j, "v")? },
            "flush" => Request::Flush,
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            other => {
                return Err(format!(
                    "unknown op '{other}' (valid: hello, mate, match-info, update, update-batch, \
                 subscribe, flush, stats, shutdown)"
                ))
            }
        };
        Ok(ParsedRequest { dataset, request })
    }
}

/// Encode an update for the wire (the loadgen and tests use this).
pub fn update_to_json(u: &EdgeUpdate) -> Json {
    match *u {
        EdgeUpdate::Insert { u, v, w } => {
            Json::object().with("kind", "insert").with("u", u).with("v", v).with("w", w)
        }
        EdgeUpdate::Delete { u, v } => {
            Json::object().with("kind", "delete").with("u", u).with("v", v)
        }
    }
}

/// A success response skeleton (`{"ok": true}`), extended per-op.
pub fn ok_response() -> Json {
    Json::object().with("ok", true)
}

/// A failure response with an HTTP-flavored status code.
pub fn err_response(code: u32, message: impl Into<String>) -> Json {
    Json::object().with("ok", false).with("code", code).with("error", message.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let cases = [
            (r#"{"op":"hello","tenant":"t1"}"#, Request::Hello { tenant: "t1".into() }),
            (r#"{"op":"mate","v":7}"#, Request::Mate { v: 7 }),
            (r#"{"op":"match-info"}"#, Request::MatchInfo),
            (
                r#"{"op":"update","kind":"insert","u":1,"v":2,"w":0.5}"#,
                Request::Update { update: EdgeUpdate::Insert { u: 1, v: 2, w: 0.5 } },
            ),
            (
                r#"{"op":"update","kind":"delete","u":3,"v":4}"#,
                Request::Update { update: EdgeUpdate::Delete { u: 3, v: 4 } },
            ),
            (r#"{"op":"subscribe","v":0}"#, Request::Subscribe { v: 0 }),
            (r#"{"op":"flush"}"#, Request::Flush),
            (r#"{"op":"stats"}"#, Request::Stats),
            (r#"{"op":"shutdown"}"#, Request::Shutdown),
        ];
        for (line, want) in cases {
            let got = ParsedRequest::parse(line).unwrap();
            assert_eq!(got.request, want, "{line}");
            assert_eq!(got.dataset, None, "{line}");
        }
    }

    #[test]
    fn parses_batches_and_dataset_routes() {
        let line = r#"{"op":"update-batch","dataset":"g2","updates":[
            {"kind":"insert","u":0,"v":1,"w":2.0},{"kind":"delete","u":1,"v":2}]}"#;
        let got = ParsedRequest::parse(line).unwrap();
        assert_eq!(got.dataset.as_deref(), Some("g2"));
        assert_eq!(
            got.request,
            Request::UpdateBatch {
                updates: vec![
                    EdgeUpdate::Insert { u: 0, v: 1, w: 2.0 },
                    EdgeUpdate::Delete { u: 1, v: 2 },
                ]
            }
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for line in [
            "not json",
            r#"{"v":3}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"mate"}"#,
            r#"{"op":"mate","v":-1}"#,
            r#"{"op":"mate","v":1.5}"#,
            r#"{"op":"update","kind":"insert","u":0,"v":1}"#,
            r#"{"op":"update","kind":"upsert","u":0,"v":1}"#,
            r#"{"op":"hello"}"#,
        ] {
            assert!(ParsedRequest::parse(line).is_err(), "{line} should not parse");
        }
    }

    #[test]
    fn update_round_trips_through_json() {
        for u in [EdgeUpdate::Insert { u: 9, v: 4, w: 1.25 }, EdgeUpdate::Delete { u: 2, v: 8 }] {
            let line = update_to_json(&u).with("op", "update").to_string_compact();
            let got = ParsedRequest::parse(&line).unwrap();
            assert_eq!(got.request, Request::Update { update: u });
        }
    }

    #[test]
    fn response_helpers_have_the_documented_shape() {
        let ok = ok_response().with("mate", 3u32);
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        let err = err_response(429, "too many pending updates");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("code").and_then(Json::as_f64), Some(429.0));
        assert!(err.get("error").and_then(Json::as_str).unwrap().contains("pending"));
    }
}

//! Quality guarantees against the exact optimum: the ½-approximation
//! bound holds everywhere, and practical quality sits near the paper's
//! reported ~94% of optimal.

use ldgm::core::blossom::blossom_mwm;
use ldgm::core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm::core::suitor_par::suitor_par;
use ldgm::core::verify::{brute_force_mwm, quality_ratio};
use ldgm::gpusim::Platform;
use ldgm::graph::gen::GraphGen;

#[test]
fn blossom_matches_bruteforce_on_many_tiny_graphs() {
    for seed in 0..40 {
        let g = GraphGen::urand().vertices(9).avg_degree(3).seed(seed).build();
        if g.num_edges() > 18 {
            continue;
        }
        let exact = blossom_mwm(&g, 1_000_000.0);
        assert_eq!(exact.verify(&g), Ok(()), "seed {seed}");
        let bf = brute_force_mwm(&g);
        assert!(
            (exact.weight(&g) - bf).abs() < 1e-6,
            "seed {seed}: blossom {} vs brute force {bf}",
            exact.weight(&g)
        );
    }
}

#[test]
fn half_bound_holds_on_all_families() {
    let platform = Platform::dgx_a100();
    for (fam, g) in [
        ("rmat", GraphGen::rmat().vertices(300).avg_degree(8).seed(3).build()),
        ("kmer", GraphGen::kmer().vertices(400).avg_degree(3).seed(3).build()),
        ("lattice", GraphGen::lattice(2).vertices(256).seed(3).build()),
        ("similarity", GraphGen::similarity(3).vertices(200).seed(3).build()),
    ] {
        let opt = blossom_mwm(&g, 1000.0).weight(&g);
        let ld = LdGpu::new(LdGpuConfig::new(platform.clone()).devices(2)).run(&g);
        let ratio = quality_ratio(ld.matching.weight(&g), opt);
        assert!(ratio >= 0.5 - 1e-9, "{fam}: ratio {ratio}");
        // The paper's empirical story: far better than the worst case.
        assert!(ratio > 0.8, "{fam}: ratio {ratio} unexpectedly poor");
        let sp = quality_ratio(suitor_par(&g).weight(&g), opt);
        assert!(sp >= 0.5 - 1e-9, "{fam} suitor ratio {sp}");
    }
}

#[test]
fn quality_matches_paper_band_on_uniform_weights() {
    // Table II: LD quality gaps of 2.6–12.5%, geomean ~6.4%. Check our
    // gaps stay inside a generous version of that band.
    let platform = Platform::dgx_a100();
    let mut ratios = Vec::new();
    for seed in 0..5 {
        let g = GraphGen::urand().vertices(400).avg_degree(10).seed(seed).build();
        let opt = blossom_mwm(&g, 1000.0).weight(&g);
        let ld = LdGpu::new(LdGpuConfig::new(platform.clone())).run(&g);
        ratios.push(quality_ratio(ld.matching.weight(&g), opt));
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(mean > 0.85 && mean <= 1.0, "mean quality ratio {mean}");
}

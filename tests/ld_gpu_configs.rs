//! LD-GPU configuration-space invariants: the computed matching must be
//! invariant under every execution configuration (devices, batches,
//! platform, memory pressure), while simulated time responds to the
//! configuration the way the paper's evaluation describes.

use ldgm::core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm::core::ld_seq::ld_seq;
use ldgm::gpusim::Platform;
use ldgm::graph::gen::GraphGen;
use ldgm::graph::CsrGraph;

fn test_graph(seed: u64) -> CsrGraph {
    GraphGen::web().vertices(3000).avg_degree(12).seed(seed).build()
}

#[test]
fn matching_invariant_across_device_and_batch_grid() {
    let g = test_graph(1);
    let reference = ld_seq(&g);
    for nd in [1usize, 2, 3, 5, 8] {
        for nb in [1usize, 2, 4, 7] {
            let out =
                LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(nd).batches(nb)).run(&g);
            assert_eq!(
                out.matching.mate_array(),
                reference.mate_array(),
                "devices={nd} batches={nb}"
            );
        }
    }
}

#[test]
fn matching_invariant_across_platforms() {
    let g = test_graph(2);
    let reference = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(4)).run(&g);
    for platform in [Platform::dgx2(), Platform::pcie_a100(), Platform::toy(4, u64::MAX)] {
        let out = LdGpu::new(LdGpuConfig::new(platform.clone()).devices(4)).run(&g);
        assert_eq!(
            out.matching.mate_array(),
            reference.matching.mate_array(),
            "platform {}",
            platform.name
        );
        assert_eq!(out.iterations, reference.iterations, "platform {}", platform.name);
    }
}

#[test]
fn memory_pressure_changes_batches_not_result() {
    let g = test_graph(3);
    let reference = ld_seq(&g);
    let full = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100())).run(&g);
    assert_eq!(full.batches, 1);
    // Squeeze memory until several batch counts emerge.
    let footprint = 2 * g.csr_bytes() + 16 * g.num_vertices() as u64;
    for frac in [2u64, 4, 8] {
        let platform = Platform::dgx_a100().with_device_memory(footprint / frac);
        let out = LdGpu::new(LdGpuConfig::new(platform)).run(&g);
        assert!(out.batches > 1, "frac {frac} should force batching");
        assert_eq!(out.matching.mate_array(), reference.mate_array(), "frac {frac}");
    }
}

#[test]
fn sim_time_positive_and_phases_account_for_it() {
    let g = test_graph(4);
    let out = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(4).batches(3)).run(&g);
    assert!(out.sim_time > 0.0);
    let p = out.profile.phases;
    assert!(p.pointing > 0.0 && p.matching > 0.0 && p.allreduce > 0.0);
    assert!(p.transfer > 0.0, "3 batches must re-stream buffers");
    assert!(p.sync > 0.0, "3 batches require explicit host syncs");
}

#[test]
fn nvlink_beats_pcie_at_same_configuration() {
    let g = GraphGen::rmat().vertices(20_000).avg_degree(16).seed(5).build();
    let nv = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(8)).run(&g);
    let pc = LdGpu::new(LdGpuConfig::new(Platform::pcie_a100()).devices(8)).run(&g);
    assert_eq!(nv.matching.mate_array(), pc.matching.mate_array());
    assert!(
        pc.sim_time > nv.sim_time,
        "PCIe collectives must cost more: {} vs {}",
        pc.sim_time,
        nv.sim_time
    );
}

#[test]
fn a100_beats_v100_at_same_configuration() {
    let g = GraphGen::rmat().vertices(20_000).avg_degree(16).seed(6).build();
    let a = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(4)).run(&g);
    let v = LdGpu::new(LdGpuConfig::new(Platform::dgx2()).devices(4)).run(&g);
    assert_eq!(a.matching.mate_array(), v.matching.mate_array());
    assert!(v.sim_time > a.sim_time);
}

#[test]
fn per_iteration_records_are_consistent() {
    let g = test_graph(7);
    let out = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(2)).run(&g);
    assert_eq!(out.profile.iterations.len(), out.iterations);
    let total_matched: u64 = out.profile.iterations.iter().map(|r| r.new_matches).sum();
    assert_eq!(total_matched as usize, out.matching.cardinality());
    // First iteration touches every live directed edge.
    let first = &out.profile.iterations[0];
    assert!(first.pct_edges > 99.0, "first iteration scans ~100%, got {}", first.pct_edges);
    // Edge work never grows.
    for w in out.profile.iterations.windows(2) {
        assert!(w[1].edges_scanned <= w[0].edges_scanned);
    }
    // Occupancies are probabilities.
    for r in &out.profile.iterations {
        assert!((0.0..=1.0).contains(&r.occupancy));
    }
}

#[test]
fn retire_flag_does_not_change_matching() {
    let g = test_graph(8);
    let on = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(2)).run(&g);
    let cfg = LdGpuConfig {
        retire_exhausted: false,
        ..LdGpuConfig::new(Platform::dgx_a100()).devices(2)
    };
    let off = LdGpu::new(cfg).run(&g);
    assert_eq!(on.matching.mate_array(), off.matching.mate_array());
    // Retirement only prunes rescans of hopeless vertices.
    let on_scans: u64 = on.profile.iterations.iter().map(|r| r.edges_scanned).sum();
    let off_scans: u64 = off.profile.iterations.iter().map(|r| r.edges_scanned).sum();
    assert!(on_scans <= off_scans);
}

//! Property-based invariants over randomly generated graphs: the
//! structural contracts of the graph substrate, the partitioner, and the
//! matching family hold for *arbitrary* inputs, not just the curated
//! families.

use proptest::prelude::*;

use ldgm::core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm::core::ld_seq::ld_seq;
use ldgm::core::suitor::suitor;
use ldgm::core::verify::half_approx_certificate;
use ldgm::gpusim::Platform;
use ldgm::graph::{CsrGraph, GraphBuilder};
use ldgm::part::{make_batches, validate_batches, Partition};

/// Strategy: an arbitrary undirected weighted graph with up to `max_n`
/// vertices and `max_m` candidate edges (duplicates/self-loops dropped by
/// the builder).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..=1000), 0..max_m).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new(n);
                for (u, v, w) in edges {
                    b.push_edge(u, v, w as f64 / 1000.0);
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_output_is_always_valid(g in arb_graph(60, 200)) {
        prop_assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn ld_seq_valid_maximal_certified(g in arb_graph(60, 200)) {
        let m = ld_seq(&g);
        prop_assert_eq!(m.verify(&g), Ok(()));
        prop_assert!(m.is_maximal(&g));
        prop_assert!(half_approx_certificate(&g, &m));
    }

    #[test]
    fn suitor_valid_maximal_and_weight_equals_ld(g in arb_graph(60, 200)) {
        let s = suitor(&g);
        prop_assert_eq!(s.verify(&g), Ok(()));
        prop_assert!(s.is_maximal(&g));
        let ld = ld_seq(&g);
        prop_assert!((s.weight(&g) - ld.weight(&g)).abs() < 1e-9,
            "suitor {} vs ld {}", s.weight(&g), ld.weight(&g));
    }

    #[test]
    fn ld_gpu_equals_ld_seq_on_arbitrary_graphs(
        g in arb_graph(50, 150),
        devices in 1usize..5,
        batches in 1usize..4,
    ) {
        let out = LdGpu::new(
            LdGpuConfig::new(Platform::dgx_a100()).devices(devices).batches(batches),
        ).run(&g);
        let seq = ld_seq(&g);
        prop_assert_eq!(out.matching.mate_array(), seq.mate_array());
    }

    #[test]
    fn ld_gpu_opt_bit_identical_across_toggle_grid(
        g in arb_graph(50, 150),
        devices_idx in 0usize..4,
        batches_idx in 0usize..3,
        toggles in 0u8..16,
    ) {
        let devices = [1usize, 2, 4, 8][devices_idx];
        let batches = [1usize, 2, 5][batches_idx];
        let seq = ld_seq(&g);
        let base = LdGpuConfig::new(Platform::dgx_a100()).devices(devices).batches(batches);
        let def = LdGpu::new(base.clone()).run(&g);
        prop_assert_eq!(def.matching.mate_array(), seq.mate_array());
        let opt = LdGpu::new(
            base.with_sorted_index(toggles & 1 != 0)
                .with_frontier(toggles & 2 != 0)
                .with_sparse_collectives(toggles & 4 != 0)
                .with_overlap(toggles & 8 != 0),
        ).run(&g);
        prop_assert_eq!(opt.matching.mate_array(), seq.mate_array(),
            "toggles {:04b}, {} devices, {} batches", toggles, devices, batches);
        prop_assert_eq!(opt.matching.mate_array(), def.matching.mate_array());
    }

    #[test]
    fn partition_tiles_and_batches_tile(
        g in arb_graph(80, 300),
        parts in 1usize..6,
        batches in 1usize..5,
    ) {
        let p = Partition::edge_balanced(&g, parts);
        prop_assert_eq!(p.validate(&g), Ok(()));
        for part in &p.parts {
            let b = make_batches(&g, part, batches);
            prop_assert_eq!(validate_batches(&g, part, &b), Ok(()));
        }
    }

    #[test]
    fn mtx_roundtrip_is_lossless(g in arb_graph(40, 120)) {
        let mut buf = Vec::new();
        ldgm::graph::io::write_mtx(&g, &mut buf).unwrap();
        let back = ldgm::graph::io::read_mtx(&buf[..], 0).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn matched_weight_never_exceeds_total(g in arb_graph(60, 200)) {
        let m = ld_seq(&g);
        prop_assert!(m.weight(&g) <= g.total_weight() + 1e-9);
        prop_assert!(m.cardinality() <= g.num_vertices() / 2);
    }
}

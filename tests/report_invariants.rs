//! Cross-algorithm reporting invariants, enforced for every algorithm the
//! default registry ships: phase breakdowns sum to the reported run time
//! (the `SimRuntime::finish` guarantee), and when tracing is on, the
//! event-trace span covers exactly the simulated run.

use ldgm::core::{MatcherRegistry, MatcherSetup};
use ldgm::graph::gen::urand;

/// `phases.total() == run_time` for every matcher that reports a profile,
/// and the trace span equals the run time for every matcher that records
/// one. No algorithm is special-cased: a new `Matcher` impl is covered the
/// moment it registers.
#[test]
fn every_algorithm_reports_consistent_time() {
    let g = urand(300, 1800, 11);
    let setup = MatcherSetup { devices: 2, collect_trace: true, ..Default::default() };
    let reg = MatcherRegistry::with_defaults(&setup);
    let mut profiled = 0;
    let mut traced = 0;
    for m in reg.iter() {
        let r = m.run(&g).unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        let tol = 1e-6 * r.run_time.max(1e-12);
        if let Some(p) = &r.profile {
            profiled += 1;
            let total = p.phases.total();
            assert!(
                (total - r.run_time).abs() <= tol,
                "{}: phases {total} != run_time {}",
                m.name(),
                r.run_time
            );
        }
        if let Some(t) = &r.trace {
            traced += 1;
            let (start, end) = t.span().expect("non-empty trace");
            assert!(start >= 0.0, "{}: trace starts at {start}", m.name());
            assert!(
                (end - r.run_time).abs() <= tol,
                "{}: trace span ends at {end}, run_time {}",
                m.name(),
                r.run_time
            );
        }
    }
    // The simulated engines (LD-GPU, SR-GPU, cuGraph) plus the profiled
    // host algorithms must all have been exercised.
    assert!(profiled >= 5, "only {profiled} profiled matchers");
    assert!(traced >= 3, "only {traced} traced matchers");
}

/// With the overlap engine enabled, `phases.total() == run_time` (and the
/// trace span still covers the run) for every registry algorithm: chunked
/// collectives reshape the timeline, but `SimRuntime::finish` derives the
/// phase breakdown from that same timeline, so the identity must survive.
#[test]
fn overlap_mode_keeps_phase_accounting_for_every_algorithm() {
    let g = urand(300, 1800, 11);
    let setup =
        MatcherSetup { devices: 4, collect_trace: true, overlap: true, ..Default::default() };
    let reg = MatcherRegistry::with_defaults(&setup);
    for m in reg.iter() {
        let r = m.run(&g).unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        let tol = 1e-6 * r.run_time.max(1e-12);
        if let Some(p) = &r.profile {
            let total = p.phases.total();
            assert!(
                (total - r.run_time).abs() <= tol,
                "{} (overlap): phases {total} != run_time {}",
                m.name(),
                r.run_time
            );
        }
        if let Some(t) = &r.trace {
            let (start, end) = t.span().expect("non-empty trace");
            assert!(start >= 0.0, "{} (overlap): trace starts at {start}", m.name());
            assert!(
                (end - r.run_time).abs() <= tol,
                "{} (overlap): trace span ends at {end}, run_time {}",
                m.name(),
                r.run_time
            );
        }
    }
}

/// The invariant holds across device counts and platforms, not just the
/// default setup.
#[test]
fn profiles_sum_across_platforms_and_device_counts() {
    let g = urand(400, 2400, 13);
    for devices in [1, 3, 4] {
        let setup = MatcherSetup {
            platform: ldgm::gpusim::Platform::dgx2(),
            devices,
            collect_trace: false,
            ..Default::default()
        };
        let reg = MatcherRegistry::with_defaults(&setup);
        for name in ["ld-gpu", "cugraph", "suitor-gpu"] {
            let r = reg.get(name).unwrap().run(&g).unwrap();
            let p = r.profile.expect("simulated matchers carry profiles");
            let total = p.phases.total();
            assert!(
                (total - r.run_time).abs() <= 1e-6 * r.run_time.max(1e-12),
                "{name}@{devices}dev: phases {total} != run_time {}",
                r.run_time
            );
            assert!(r.trace.is_none(), "{name}: trace not requested");
        }
    }
}

//! End-to-end observability invariants: event-trace well-formedness,
//! timeline phase attribution, run reports, and the CLI round trip
//! `gen → match --report-json → stats`.

use ldgm::core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm::core::{MatcherRegistry, MatcherSetup};
use ldgm::gpusim::trace::{EventKind, Trace};
use ldgm::gpusim::{chrome_trace_json, json, timeline_breakdown, Platform};
use ldgm::graph::gen::GraphGen;
use ldgm_cli::args::Args;
use ldgm_cli::commands;
use proptest::prelude::*;

fn traced_run(n: usize, deg: f64, seed: u64, devices: usize, batches: usize) -> (Trace, f64) {
    let g = GraphGen::rmat().vertices(n).avg_degree(deg).seed(seed).build();
    let cfg = LdGpuConfig::new(Platform::dgx_a100()).devices(devices).batches(batches).with_trace();
    let out = LdGpu::new(cfg).run(&g);
    (out.trace.expect("trace requested"), out.sim_time)
}

/// Every span is well-formed and inside the run window, and compute is a
/// single in-order queue: per-device kernel spans never overlap.
#[test]
fn trace_spans_are_well_formed_and_kernels_serialize() {
    for (devices, batches) in [(1, 1), (2, 2), (4, 1), (3, 3)] {
        let (trace, sim_time) = traced_run(900, 8.0, 42, devices, batches);
        assert!(!trace.events.is_empty());
        let eps = 1e-12 * sim_time.max(1.0);
        for e in &trace.events {
            assert!(e.start <= e.end, "span reversed: {e:?}");
            assert!(e.start >= -eps, "span before t=0: {e:?}");
            assert!(e.end <= sim_time + eps, "span past sim_time {sim_time}: {e:?}");
            assert!(e.device < devices, "device out of range: {e:?}");
        }
        for d in 0..devices {
            let mut kernels: Vec<(f64, f64)> = trace
                .events
                .iter()
                .filter(|e| e.device == d && e.kind == EventKind::Kernel)
                .map(|e| (e.start, e.end))
                .collect();
            kernels.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in kernels.windows(2) {
                assert!(
                    w[1].0 >= w[0].1 - eps,
                    "kernels overlap on dev{d}: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

/// The Chrome-trace export carries every duration event with the envelope
/// Perfetto requires, at microsecond scale.
#[test]
fn chrome_trace_export_is_faithful() {
    let (trace, _) = traced_run(700, 6.0, 7, 2, 2);
    let doc = chrome_trace_json(&trace);
    let parsed = json::parse(&doc.to_string_compact()).unwrap();
    let events = parsed.as_array().unwrap();
    let xs: Vec<_> =
        events.iter().filter(|e| e.get("ph").and_then(json::Json::as_str) == Some("X")).collect();
    assert_eq!(xs.len(), trace.events.len(), "one X event per span");
    for e in &xs {
        let ts = e.get("ts").and_then(json::Json::as_f64).unwrap();
        let dur = e.get("dur").and_then(json::Json::as_f64).unwrap();
        assert!(ts >= 0.0 && dur >= 0.0);
        assert!(e.get("pid").is_some() && e.get("tid").is_some());
        assert!(e.get("name").and_then(json::Json::as_str).is_some());
    }
    // Total X duration matches the trace's busy time (µs vs s).
    let total_dur: f64 =
        xs.iter().map(|e| e.get("dur").and_then(json::Json::as_f64).unwrap()).sum();
    let busy: f64 = trace.events.iter().map(|e| (e.end - e.start) * 1e6).sum();
    assert!((total_dur - busy).abs() <= 1e-6 * busy.max(1.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The timeline phase attribution partitions [0, sim_time]: phase
    /// totals match the simulated run time to within 1e-9 relative, for
    /// arbitrary graph shapes and device/batch configurations.
    #[test]
    fn timeline_breakdown_partitions_sim_time(
        n in 64usize..1200,
        deg in 2.0f64..12.0,
        seed in 0u64..1000,
        devices in 1usize..5,
        batches in 1usize..4,
    ) {
        let (trace, sim_time) = traced_run(n, deg, seed, devices, batches);
        let phases = timeline_breakdown(&trace, sim_time);
        for v in [phases.pointing, phases.matching, phases.allreduce, phases.transfer, phases.sync] {
            prop_assert!(v >= 0.0, "negative phase in {phases:?}");
        }
        let total = phases.total();
        prop_assert!(
            (total - sim_time).abs() <= 1e-9 * sim_time.max(1e-30),
            "phases {total} != sim_time {sim_time}"
        );
    }
}

fn cli(line: &str) -> Result<String, ldgm_cli::args::ArgError> {
    commands::run(&Args::parse(line.split_whitespace().map(String::from)).unwrap())
}

/// Full CLI round trip on a temp dir: generate a graph, match it with a
/// JSON report, and re-read it with `stats`; the report's graph/matching
/// numbers agree with the stats output and the registry run.
#[test]
fn cli_round_trip_gen_match_report_stats() {
    let dir = std::env::temp_dir().join("ldgm_obs_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let gpath = dir.join("g.mtx").to_string_lossy().into_owned();
    let rpath = dir.join("report.json").to_string_lossy().into_owned();

    cli(&format!("gen --family web --vertices 350 --avg-degree 6 --seed 5 --out {gpath}")).unwrap();
    let out = cli(&format!(
        "match --input {gpath} --algorithm ld-gpu --devices 2 --report-json {rpath} --verify"
    ))
    .unwrap();
    assert!(out.contains("wrote report"));
    assert!(out.contains("structurally valid"));

    let report = json::parse(&std::fs::read_to_string(&rpath).unwrap()).unwrap();
    let vertices =
        report.get("graph").and_then(|g| g.get("vertices")).and_then(json::Json::as_f64).unwrap();
    let stats_out = cli(&format!("stats --input {gpath}")).unwrap();
    assert!(
        stats_out.contains(&format!("|V|        {vertices}")),
        "stats/report vertex mismatch: {stats_out}"
    );

    // The report's matching agrees with an independent registry run on the
    // same file (everything is deterministic).
    let g = ldgm::graph::io::read_mtx_file(&gpath, 0).unwrap();
    let setup = MatcherSetup { devices: 2, ..Default::default() };
    let r = MatcherRegistry::with_defaults(&setup).get("ld-gpu").unwrap().run(&g).unwrap();
    assert_eq!(
        report.get("matching").and_then(|m| m.get("cardinality")).and_then(json::Json::as_f64),
        Some(r.matching.cardinality() as f64)
    );
    assert_eq!(report.get("sim_time").and_then(json::Json::as_f64), Some(r.run_time));
    std::fs::remove_dir_all(&dir).ok();
}

//! Cross-algorithm invariants spanning every matcher in the workspace:
//! structural validity, maximality, the ½-approximation dominance
//! certificate, and the family-equality theorems the implementations are
//! designed around.

use ldgm::core::{
    greedy::greedy, ld_gpu::LdGpu, ld_gpu::LdGpuConfig, ld_seq::ld_seq, local_max::local_max,
    suitor::suitor, suitor_par::suitor_par, verify::half_approx_certificate, MatcherRegistry,
    MatcherSetup,
};
use ldgm::gpusim::Platform;
use ldgm::graph::gen::GraphGen;
use ldgm::graph::weights::make_weights_distinct;
use ldgm::graph::CsrGraph;

fn families(seed: u64) -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("rmat", GraphGen::rmat().vertices(700).avg_degree(10).seed(seed).build()),
        ("urand", GraphGen::urand().vertices(700).avg_degree(8).seed(seed).build()),
        ("kmer", GraphGen::kmer().vertices(900).avg_degree(3).seed(seed).build()),
        ("web", GraphGen::web().vertices(700).avg_degree(10).seed(seed).build()),
        ("lattice", GraphGen::lattice(2).vertices(625).seed(seed).build()),
        ("geometric", GraphGen::geometric(0.06).vertices(600).seed(seed).build()),
        ("similarity", GraphGen::similarity(5).vertices(400).seed(seed).build()),
    ]
}

#[test]
fn every_algorithm_valid_maximal_certified_on_every_family() {
    for seed in [1u64, 2] {
        for (fam, g) in families(seed) {
            // Every algorithm the Matcher registry ships, exercised through
            // the unified API. Blossom is skipped: its O(n^3) exact search
            // is too slow at these sizes (and it maximizes weight, not
            // cardinality, so maximality need not hold for it anyway).
            let setup = MatcherSetup { devices: 3, seed, ..Default::default() };
            let registry = MatcherRegistry::with_defaults(&setup);
            for matcher in registry.iter() {
                let alg = matcher.name().to_string();
                if alg == "blossom" {
                    continue;
                }
                let r = matcher.run(&g).unwrap_or_else(|e| panic!("{alg} on {fam}: {e}"));
                let m = &r.matching;
                assert_eq!(m.verify(&g), Ok(()), "{alg} on {fam} seed {seed}");
                assert!(m.is_maximal(&g), "{alg} on {fam} seed {seed} not maximal");
                if alg != "auction" {
                    // The locally dominant family carries the static
                    // certificate; the randomized auction does not.
                    assert!(
                        half_approx_certificate(&g, m),
                        "{alg} on {fam} seed {seed} fails dominance certificate"
                    );
                }
            }
        }
    }
}

#[test]
fn pointer_family_is_bit_identical() {
    for (fam, g) in families(7) {
        let a = ld_seq(&g);
        let b = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(4)).run(&g).matching;
        assert_eq!(a.mate_array(), b.mate_array(), "LD-SEQ vs LD-GPU differ on {fam}");
    }
}

#[test]
fn all_locally_dominant_algorithms_equal_greedy_under_distinct_weights() {
    for (fam, g) in families(13) {
        let g = make_weights_distinct(&g, 99);
        let reference = greedy(&g);
        for (alg, m) in [
            ("ld_seq", ld_seq(&g)),
            ("local_max", local_max(&g)),
            ("suitor", suitor(&g)),
            ("suitor_par", suitor_par(&g)),
        ] {
            assert_eq!(
                m.mate_array(),
                reference.mate_array(),
                "{alg} != greedy on {fam} with distinct weights"
            );
        }
    }
}

#[test]
fn weights_equal_across_ld_family_even_with_ties() {
    // The paper's uniform 3-decimal weights produce heavy ties; the shared
    // tie-break keeps the whole family on one matching.
    for (fam, g) in families(21) {
        let w0 = ld_seq(&g).weight(&g);
        assert_eq!(local_max(&g).weight(&g), w0, "{fam}");
        assert_eq!(suitor(&g).weight(&g), w0, "{fam}");
    }
}

//! # ldgm — locally dominant weighted graph matching on simulated multi-GPU platforms
//!
//! This is the umbrella crate of the `ldgm` workspace, a from-scratch Rust
//! reproduction of *"Efficient Weighted Graph Matching on GPUs"* (SC 2024).
//! It re-exports the library crates so applications can depend on a
//! single package:
//!
//! * [`graph`] — weighted graph substrate: CSR storage, synthetic
//!   generators for the paper's fourteen dataset families, Matrix Market
//!   I/O, and deterministic weight sampling.
//! * [`part`] — edge-balanced contiguous vertex partitioning and batch
//!   formation (the paper's §III-A/B).
//! * [`gpusim`] — a deterministic multi-GPU platform simulator standing in
//!   for CUDA/NCCL/NVLink hardware: device specs (A100/V100), dual-buffer
//!   streams, ring-allreduce collectives, warp-centric kernel cost models,
//!   and per-iteration profiling.
//! * [`core`] — the matching algorithms: the paper's **LD-GPU**
//!   (multi-device, batched, pointer-based locally dominant matching) plus
//!   every baseline it is evaluated against (Suitor sequential/parallel/
//!   simulated-GPU, LocalMax, global greedy, red-blue auction, an exact
//!   Blossom solver, and a cuGraph-style multi-GPU baseline).
//! * [`dynamic`] — batch-dynamic maintenance of the locally-dominant
//!   matching under edge insertions/deletions: a delta-CSR overlay,
//!   frontier-restricted incremental SETPOINTERS/SETMATES with simulated
//!   billing, deterministic update-stream workloads, and an
//!   incremental-vs-from-scratch engine registry.
//!
//! ## Quickstart
//!
//! ```
//! use ldgm::graph::gen::GraphGen;
//! use ldgm::gpusim::Platform;
//! use ldgm::core::ld_gpu::{LdGpu, LdGpuConfig};
//!
//! // A small power-law graph with uniform [0,1] weights.
//! let g = GraphGen::rmat().vertices(1 << 10).avg_degree(8).seed(42).build();
//!
//! // Run LD-GPU on two simulated A100 devices of a DGX-A100 node.
//! let cfg = LdGpuConfig::new(Platform::dgx_a100()).devices(2);
//! let out = LdGpu::new(cfg).run(&g);
//!
//! assert!(out.matching.verify(&g).is_ok());
//! println!("matched weight = {:.3} in {} iterations, simulated {:.3} ms",
//!          out.matching.weight(&g), out.iterations, out.sim_time * 1e3);
//! ```
//!
//! See `examples/` for complete applications and `crates/ldgm-bench` for
//! the harness regenerating every table and figure of the paper.

pub use ldgm_core as core;
pub use ldgm_dyn as dynamic;
pub use ldgm_gpusim as gpusim;
pub use ldgm_graph as graph;
pub use ldgm_part as part;

//! Vendored stand-in for the `rayon` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the *exact* parallel-iterator surface it uses:
//! `into_par_iter` on vectors and ranges, `par_chunks_mut` on slices, and
//! the `zip`/`enumerate`/`map`/`for_each`/`reduce`/`sum`/`collect`
//! combinators. Work runs on one lazily-initialized persistent worker
//! pool shared by every parallel call, split into one contiguous group
//! per available core, which preserves rayon's two properties the
//! callers rely on: genuine parallelism across disjoint `&mut` chunks,
//! and deterministic ordering of collected results.
//!
//! This is not a work-stealing runtime, but it is a real pool: the
//! kernels in this repository issue thousands of parallel calls per run,
//! and paying a thread spawn/join per call dominated small launches. The
//! pool is spawned once (`available_parallelism() - 1` workers; the
//! caller executes its first group inline and then helps drain the
//! shared queue, so nested parallel calls cannot deadlock even with
//! every worker busy). Worker panics are caught and re-thrown on the
//! calling thread after the whole call completes, matching the old
//! scoped-thread join behaviour.

// Vendored shim: API fidelity over lint cleanliness.
#![allow(clippy::all)]

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

/// Number of threads a parallel call may use (workers + the caller).
fn max_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// A lifetime-erased unit of work queued on the shared pool. Jobs are
/// only ever `'static` from the queue's point of view; soundness of the
/// erasure is argued at the `transmute` in [`pmap`].
type Job = Box<dyn FnOnce() + Send>;

/// The process-wide persistent worker pool backing every parallel call.
struct Pool {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
}

impl Pool {
    /// The shared pool, spawning its workers on first use.
    fn get() -> &'static Pool {
        static POOL: OnceLock<&'static Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let pool: &'static Pool = Box::leak(Box::new(Pool {
                queue: Mutex::new(VecDeque::new()),
                work_ready: Condvar::new(),
            }));
            let workers = max_threads().saturating_sub(1).max(1);
            for i in 0..workers {
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || pool.worker_loop())
                    .expect("rayon-shim: failed to spawn pool worker");
            }
            pool
        })
    }

    /// Block on the queue forever, running jobs as they arrive. Jobs
    /// contain their own `catch_unwind`, so a panicking closure never
    /// kills a worker.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    match q.pop_front() {
                        Some(j) => break j,
                        None => q = self.work_ready.wait(q).unwrap(),
                    }
                }
            };
            job();
        }
    }

    /// Enqueue a batch of jobs and wake the workers.
    fn submit(&self, jobs: Vec<Job>) {
        let mut q = self.queue.lock().unwrap();
        for j in jobs {
            q.push_back(j);
        }
        drop(q);
        self.work_ready.notify_all();
    }

    /// Pop one queued job without blocking (used by callers to help
    /// drain the queue while they wait for their own groups).
    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }
}

/// Per-`pmap`-call completion state, shared with the jobs of that call.
struct CallState {
    /// Groups submitted to the pool that have not finished yet.
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// First panic payload captured by any group of this call.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl CallState {
    /// Record a panic payload (first one wins) so the caller can
    /// `resume_unwind` it after every group has finished.
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// A raw slot pointer smuggled into a pool job. Each job writes only its
/// own slot, and the caller does not touch the slots until all jobs of
/// the call have completed.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}

/// Run `f` over `items` on the shared pool, preserving input order in
/// the output. Falls back to the calling thread for small inputs.
fn pmap<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut groups: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let g: Vec<T> = it.by_ref().take(chunk).collect();
        if g.is_empty() {
            break;
        }
        groups.push(g);
    }
    let ngroups = groups.len();
    if ngroups <= 1 {
        return groups.into_iter().flatten().map(f).collect();
    }

    let mut slots: Vec<Option<Vec<R>>> = (0..ngroups).map(|_| None).collect();
    // One base pointer for all slot writes: each group owns exactly one
    // disjoint slot, and `slots` itself is not used again until every
    // group is done.
    let base: *mut Option<Vec<R>> = slots.as_mut_ptr();
    let state = CallState {
        pending: Mutex::new(ngroups - 1),
        done: Condvar::new(),
        panic: Mutex::new(None),
    };
    let pool = Pool::get();

    // Submit groups 1.. to the pool; the caller runs group 0 inline and
    // then helps drain the queue, so completion never depends on a free
    // worker (nested parallel calls included).
    let mut rest = groups.split_off(1);
    let mut jobs: Vec<Job> = Vec::with_capacity(ngroups - 1);
    for (i, g) in rest.drain(..).enumerate() {
        let slot = SendPtr(unsafe { base.add(i + 1) });
        let state_ref: &CallState = &state;
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let slot = slot;
            match catch_unwind(AssertUnwindSafe(|| g.into_iter().map(|x| f(x)).collect::<Vec<R>>()))
            {
                Ok(v) => unsafe { *slot.0 = Some(v) },
                Err(payload) => state_ref.record_panic(payload),
            }
            let mut pending = state_ref.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                state_ref.done.notify_all();
            }
        });
        // SAFETY: the job borrows `f`, `state` and the `slots` buffer
        // from this stack frame. `pmap` does not return (or touch
        // `slots`) until `state.pending` reaches zero, i.e. until every
        // job has finished running, so the erased borrows strictly
        // outlive every use.
        let job: Job = unsafe { std::mem::transmute(job) };
        jobs.push(job);
    }
    pool.submit(jobs);

    // Group 0 runs inline on the calling thread.
    let g0 = groups.into_iter().next().unwrap();
    match catch_unwind(AssertUnwindSafe(|| g0.into_iter().map(|x| f(x)).collect::<Vec<R>>())) {
        Ok(v) => unsafe { *base = Some(v) },
        Err(payload) => state.record_panic(payload),
    }

    // Help-drain: while our groups are outstanding, run whatever is
    // queued (ours or another call's); only block once the queue is
    // empty, meaning our remaining groups are already running elsewhere.
    loop {
        if *state.pending.lock().unwrap() == 0 {
            break;
        }
        match pool.try_pop() {
            Some(job) => job(),
            None => {
                let pending = state.pending.lock().unwrap();
                let _done = state.done.wait_while(pending, |p| *p > 0).unwrap();
                break;
            }
        }
    }

    if let Some(payload) = state.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|s| s.expect("rayon-shim: group finished without a result"))
        .flatten()
        .collect()
}

/// An eagerly materialized "parallel" iterator: holds the items, applies
/// the pipeline's single `map`/`for_each` stage on scoped threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair each item with its index (before any parallel stage).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Zip with another parallel iterator (stops at the shorter side).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter { items: self.items.into_iter().zip(other.items).collect() }
    }

    /// Attach the parallel mapping stage.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Execute `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        pmap(self.items, &|x| f(x));
    }
}

/// A parallel iterator with its mapping stage attached; terminal
/// operations execute the map on scoped threads.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Collect mapped results, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        pmap(self.items, &self.f).into_iter().collect()
    }

    /// Fold mapped results with `op`, seeded by `identity`.
    pub fn reduce<I, O>(self, identity: I, op: O) -> R
    where
        I: Fn() -> R,
        O: Fn(R, R) -> R,
    {
        pmap(self.items, &self.f).into_iter().fold(identity(), op)
    }

    /// Sum mapped results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        pmap(self.items, &self.f).into_iter().sum()
    }
}

/// Conversion into a [`ParIter`] — the shim's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type of the parallel iterator.
    type Item: Send;
    /// Materialize the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize, i32, i64);

/// `par_chunks_mut` / `par_iter_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over contiguous mutable chunks of length `size`
    /// (last chunk may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;

    /// Parallel iterator over mutable element references.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter { items: self.chunks_mut(size.max(1)).collect() }
    }

    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
}

/// Parallel iterator over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send;
    /// Materialize the parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

pub mod prelude {
    //! The subset of `rayon::prelude` this workspace imports.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_writes_disjointly() {
        let mut v = vec![0u64; 1000];
        v.par_chunks_mut(7)
            .enumerate()
            .map(|(i, c)| {
                for x in c.iter_mut() {
                    *x = i as u64;
                }
                c.len() as u64
            })
            .sum::<u64>();
        assert_eq!(v[0], 0);
        assert_eq!(v[999], 999 / 7);
    }

    #[test]
    fn zip_enumerate_reduce() {
        let mut a = vec![1u64; 64];
        let mut b = vec![2u64; 64];
        let total = a
            .par_chunks_mut(8)
            .zip(b.par_chunks_mut(8))
            .enumerate()
            .map(|(i, (ca, cb))| {
                ca[0] += i as u64;
                ca.iter().sum::<u64>() + cb.iter().sum::<u64>()
            })
            .reduce(|| 0, |x, y| x + y);
        assert_eq!(total, 64 + 64 * 2 + (0..8).sum::<u64>());
    }

    #[test]
    fn range_for_each_runs_every_index() {
        let hits = AtomicU64::new(0);
        (0u32..4096).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4096);
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        (0u32..0).into_par_iter().for_each(|_| panic!("must not run"));
    }

    #[test]
    fn nested_parallel_calls_complete() {
        // An inner parallel call issued from a pool job must not
        // deadlock even when every worker is occupied by the outer one.
        let out: Vec<u64> = (0u64..64)
            .into_par_iter()
            .map(|i| (0u64..256).into_par_iter().map(|j| i * 256 + j).sum::<u64>())
            .collect();
        let expect: Vec<u64> = (0u64..64).map(|i| (0u64..256).map(|j| i * 256 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            (0u32..4096).into_par_iter().for_each(|i| {
                if i == 1234 {
                    panic!("boom from a pool job");
                }
            });
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
        // The pool must still be fully usable after a panicking call.
        let total: u64 = (0u64..4096).into_par_iter().map(|x| x).sum();
        assert_eq!(total, 4096 * 4095 / 2);
    }

    #[test]
    fn repeated_calls_reuse_a_bounded_thread_set() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // With the persistent pool, thousands of parallel calls touch at
        // most workers + callers distinct threads; the old per-call
        // scoped-spawn design would accumulate thousands of IDs.
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        for _ in 0..500 {
            (0u32..64).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        }
        // Slack: concurrent tests' caller threads may help-drain our
        // jobs, so allow a handful of extra test-harness threads.
        assert!(ids.lock().unwrap().len() <= max_threads() + 8);
    }
}

//! Vendored stand-in for the `rayon` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the *exact* parallel-iterator surface it uses:
//! `into_par_iter` on vectors and ranges, `par_chunks_mut` on slices, and
//! the `zip`/`enumerate`/`map`/`for_each`/`reduce`/`sum`/`collect`
//! combinators. Work is executed on real OS threads via
//! [`std::thread::scope`], split into one contiguous group per available
//! core, which preserves rayon's two properties the callers rely on:
//! genuine parallelism across disjoint `&mut` chunks, and deterministic
//! ordering of collected results.
//!
//! This is not a work-stealing runtime; each parallel call spawns its own
//! scoped threads. For the workloads in this repository (a handful of
//! device tasks, or thousands of uniform warp chunks) static chunking is
//! within noise of a real pool, and it keeps the shim dependency-free.

// Vendored shim: API fidelity over lint cleanliness.
#![allow(clippy::all)]

use std::ops::Range;

/// Number of worker threads a parallel call may use.
fn max_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Run `f` over `items` on scoped threads, preserving input order in the
/// output. Falls back to the calling thread for small inputs.
fn pmap<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut groups: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let g: Vec<T> = it.by_ref().take(chunk).collect();
        if g.is_empty() {
            break;
        }
        groups.push(g);
    }
    let nested: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|g| s.spawn(move || g.into_iter().map(|x| f(x)).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon-shim worker panicked")).collect()
    });
    nested.into_iter().flatten().collect()
}

/// An eagerly materialized "parallel" iterator: holds the items, applies
/// the pipeline's single `map`/`for_each` stage on scoped threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair each item with its index (before any parallel stage).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Zip with another parallel iterator (stops at the shorter side).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter { items: self.items.into_iter().zip(other.items).collect() }
    }

    /// Attach the parallel mapping stage.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Execute `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        pmap(self.items, &|x| f(x));
    }
}

/// A parallel iterator with its mapping stage attached; terminal
/// operations execute the map on scoped threads.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Collect mapped results, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        pmap(self.items, &self.f).into_iter().collect()
    }

    /// Fold mapped results with `op`, seeded by `identity`.
    pub fn reduce<I, O>(self, identity: I, op: O) -> R
    where
        I: Fn() -> R,
        O: Fn(R, R) -> R,
    {
        pmap(self.items, &self.f).into_iter().fold(identity(), op)
    }

    /// Sum mapped results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        pmap(self.items, &self.f).into_iter().sum()
    }
}

/// Conversion into a [`ParIter`] — the shim's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type of the parallel iterator.
    type Item: Send;
    /// Materialize the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize, i32, i64);

/// `par_chunks_mut` / `par_iter_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over contiguous mutable chunks of length `size`
    /// (last chunk may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;

    /// Parallel iterator over mutable element references.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter { items: self.chunks_mut(size.max(1)).collect() }
    }

    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
}

/// Parallel iterator over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send;
    /// Materialize the parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

pub mod prelude {
    //! The subset of `rayon::prelude` this workspace imports.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_writes_disjointly() {
        let mut v = vec![0u64; 1000];
        v.par_chunks_mut(7)
            .enumerate()
            .map(|(i, c)| {
                for x in c.iter_mut() {
                    *x = i as u64;
                }
                c.len() as u64
            })
            .sum::<u64>();
        assert_eq!(v[0], 0);
        assert_eq!(v[999], 999 / 7);
    }

    #[test]
    fn zip_enumerate_reduce() {
        let mut a = vec![1u64; 64];
        let mut b = vec![2u64; 64];
        let total = a
            .par_chunks_mut(8)
            .zip(b.par_chunks_mut(8))
            .enumerate()
            .map(|(i, (ca, cb))| {
                ca[0] += i as u64;
                ca.iter().sum::<u64>() + cb.iter().sum::<u64>()
            })
            .reduce(|| 0, |x, y| x + y);
        assert_eq!(total, 64 + 64 * 2 + (0..8).sum::<u64>());
    }

    #[test]
    fn range_for_each_runs_every_index() {
        let hits = AtomicU64::new(0);
        (0u32..4096).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4096);
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        (0u32..0).into_par_iter().for_each(|_| panic!("must not run"));
    }
}

//! Minimal readiness polling over raw OS primitives.
//!
//! The workspace is dependency-free, so the `ldgm-serve` reactor cannot
//! pull `mio`/`polling` from crates.io. This shim declares the handful of
//! syscalls it needs directly against the C library that `std` already
//! links:
//!
//! - on **Linux**, `epoll_create1`/`epoll_ctl`/`epoll_wait` — the
//!   production backend, O(ready) per wakeup;
//! - on **other Unixes** (macOS CI, BSDs), a `poll(2)` fallback with the
//!   same API — O(registered) per wakeup, which is fine for test-scale
//!   connection counts.
//!
//! Semantics are deliberately the simple subset the reactor uses:
//! **level-triggered** readiness, one `u64` token per registered fd, and
//! explicit interest updates (`modify`) so write-interest can be armed
//! only while a send buffer is non-empty. A pipe-based [`Waker`] lets
//! other threads interrupt a blocked [`Poller::wait`].

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;

/// Readiness interest for a registered fd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true };
    /// Registered but currently dormant (backpressure: reads paused).
    pub const NONE: Interest = Interest { readable: false, writable: false };
    /// Write-only interest (reads paused while draining a full buffer).
    pub const WRITE: Interest = Interest { readable: false, writable: true };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (includes EOF/peer-closed: a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup was flagged; the fd should be torn down after
    /// draining.
    pub error: bool,
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x0004;

fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
    cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
    Ok(())
}

/// Cross-thread wakeup for a blocked [`Poller::wait`]: register
/// [`Waker::fd`] with a reserved token; [`Waker::wake`] makes that fd
/// readable, [`Waker::drain`] clears it.
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// A fresh non-blocking pipe pair.
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0 as c_int; 2];
        cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
        let (r, w) = (fds[0], fds[1]);
        set_nonblocking(r)?;
        set_nonblocking(w)?;
        Ok(Waker { read_fd: r, write_fd: w })
    }

    /// The fd to register for read interest.
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Make the wake fd readable. Safe from any thread; a full pipe
    /// already guarantees a pending wakeup, so EAGAIN is ignored.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe {
            let _ = write(self.write_fd, &byte, 1);
        }
    }

    /// Consume queued wakeups so the fd goes quiet again.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

// SAFETY: the pipe fds are plain ints; write/read on pipes are
// thread-safe at the kernel level.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(target_os = "linux")]
mod backend {
    use super::*;

    // On x86_64 the kernel ABI packs epoll_event to 12 bytes.
    #[repr(C, packed)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP; // always learn about peer hangups
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// Level-triggered epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// A fresh epoll instance.
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        /// Register `fd` under `token` with `interest`.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask(interest), data: token };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) })?;
            Ok(())
        }

        /// Update the interest (and token) of a registered fd.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask(interest), data: token };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) })?;
            Ok(())
        }

        /// Deregister a fd.
        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
            Ok(())
        }

        /// Block up to `timeout_ms` (-1 = forever) and append ready
        /// events to `out`; returns how many arrived. EINTR reads as an
        /// empty wakeup.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            const CAP: usize = 256;
            let mut buf: [EpollEvent; CAP] = unsafe { std::mem::zeroed() };
            let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as c_int, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for ev in buf.iter().take(n as usize) {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(n as usize)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }

    // SAFETY: epoll fds may be operated on from multiple threads; the
    // reactor only ever waits from one.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    use super::*;
    use std::sync::Mutex;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x0001;
    const POLLOUT: i16 = 0x0004;
    const POLLERR: i16 = 0x0008;
    const POLLHUP: i16 = 0x0010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
    }

    /// `poll(2)`-backed fallback with the same level-triggered API.
    #[derive(Debug)]
    pub struct Poller {
        registered: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        /// A fresh (empty) registration set.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { registered: Mutex::new(Vec::new()) })
        }

        /// Register `fd` under `token` with `interest`.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            if reg.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered"));
            }
            reg.push((fd, token, interest));
            Ok(())
        }

        /// Update the interest (and token) of a registered fd.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            match reg.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Deregister a fd.
        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            let before = reg.len();
            reg.retain(|&(f, _, _)| f != fd);
            if reg.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        /// Block up to `timeout_ms` (-1 = forever) and append ready
        /// events to `out`.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let snapshot: Vec<(RawFd, u64, Interest)> = self.registered.lock().unwrap().clone();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: (if interest.readable { POLLIN } else { 0 })
                        | (if interest.writable { POLLOUT } else { 0 }),
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            let mut count = 0;
            for (pfd, &(_, token, _)) in fds.iter().zip(&snapshot) {
                let re = pfd.revents;
                if re == 0 {
                    continue;
                }
                count += 1;
                out.push(Event {
                    token,
                    readable: re & (POLLIN | POLLHUP) != 0,
                    writable: re & POLLOUT != 0,
                    error: re & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(count)
        }
    }
}

#[cfg(not(unix))]
compile_error!("epoll_shim supports Unix targets only (epoll on Linux, poll elsewhere)");

pub use backend::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.fd(), 7, Interest::READ).unwrap();
        let w = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            w.wake();
        });
        let mut events = Vec::new();
        // Generous timeout: the waker must fire long before it.
        poller.wait(&mut events, 5_000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        waker.drain();
        // Drained: an immediate wait sees nothing.
        events.clear();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 7));
        t.join().unwrap();
    }

    #[test]
    fn socket_readiness_and_interest_updates() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        let fd = server.as_raw_fd();
        poller.add(fd, 42, Interest::READ).unwrap();

        // Nothing to read yet.
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 42));

        client.write_all(b"ping").unwrap();
        events.clear();
        poller.wait(&mut events, 5_000).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        // Write interest on an empty socket buffer reports writable.
        poller.modify(fd, 42, Interest::READ_WRITE).unwrap();
        events.clear();
        poller.wait(&mut events, 5_000).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.writable));

        // Dormant interest reports nothing even with pending bytes.
        poller.modify(fd, 42, Interest::NONE).unwrap();
        events.clear();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 42));

        poller.remove(fd).unwrap();
        let mut buf = [0u8; 8];
        let mut s = server;
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }
}

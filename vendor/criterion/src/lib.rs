//! Vendored stand-in for the `criterion` crate.
//!
//! Implements the benchmarking API surface the workspace's `benches/` use
//! — `benchmark_group`, `sample_size`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple best-of-N wall-clock measurement
//! printed to stdout. No statistics, plots, or baselines: enough to compile
//! and run `cargo bench` without crates.io access and to eyeball relative
//! numbers.

// Vendored shim: API fidelity over lint cleanliness.
#![allow(clippy::all)]

use std::time::Instant;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing context passed to the measured closure.
pub struct Bencher {
    samples: usize,
    best_ns: u128,
}

impl Bencher {
    /// Measure `f`, best wall-clock of the configured sample count.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let r = f();
            let dt = t0.elapsed().as_nanos();
            std::hint::black_box(&r);
            if dt < self.best_ns {
                self.best_ns = dt;
            }
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(&label, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (no-op; parity with criterion).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.into().0;
        self.run_one(&label, f);
        self
    }

    fn run_one(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { samples: self.sample_size, best_ns: u128::MAX };
        f(&mut b);
        if b.best_ns == u128::MAX {
            println!("bench {label:<50} (no samples)");
        } else {
            println!("bench {label:<50} best {:.3} ms", b.best_ns as f64 / 1e6);
        }
    }
}

/// Re-export matching `criterion::black_box` (callers may also use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("accumulate", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| b.iter(|| n * 2));
        g.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("top-level", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}

//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the strategy surface the workspace's property tests use: integer/float
//! range strategies, tuples, `collection::vec`, `prop_map`/`prop_flat_map`,
//! `Just`, the `proptest!` macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the case index, and the generator is fully deterministic (seeded from
//! the test name), so a failure reproduces exactly by re-running the test.

// Vendored shim: API fidelity over lint cleanliness.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator used by all strategies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for one named test case: seed derives from the test name and
    /// case index, so every run of the binary sees the same inputs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h ^ ((case as u64) << 32) ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The shim's equivalent of proptest's `Strategy`.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy producing a fixed (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u64) - (*self.start() as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors of `element` values with length drawn from
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                Strategy::generate(&self.len, rng)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration: number of generated cases per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Assert inside a property; reports the failing case on panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Define deterministic property tests. Supports the
/// `#![proptest_config(expr)]` header and `pattern in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

pub mod prelude {
    //! The subset of `proptest::prelude` this workspace imports.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
    /// Alias namespace matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(1u32..=1000), &mut rng);
            assert!((1..=1000).contains(&w));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn determinism_per_name_and_case() {
        let a = Strategy::generate(&(0u64..1 << 40), &mut TestRng::for_case("x", 7));
        let b = Strategy::generate(&(0u64..1 << 40), &mut TestRng::for_case("x", 7));
        let c = Strategy::generate(&(0u64..1 << 40), &mut TestRng::for_case("x", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::for_case("compose", 1);
        let s = collection::vec((0u32..5, 10u32..20), 2..9);
        let v = s.generate(&mut rng);
        assert!(v.len() >= 2 && v.len() < 9);
        for (a, b) in v {
            assert!(a < 5 && (10..20).contains(&b));
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = TestRng::for_case("flat", 0);
        let s = (2usize..10).prop_flat_map(|n| collection::vec(0usize..n, n..n + 1));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.iter().all(|&x| x < v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, y in 0u32..100) {
            prop_assert!(x < 100 && y < 100);
            prop_assert_eq!(x + y, y + x);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_header(v in collection::vec(0u8..255, 0..32)) {
            prop_assert!(v.len() < 32);
        }
    }
}

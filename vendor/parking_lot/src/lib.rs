//! Vendored stand-in for the `parking_lot` crate.
//!
//! Provides the non-poisoning `Mutex`/`RwLock` interface the workspace
//! uses, implemented over `std::sync`. A poisoned std lock (a panic while
//! held) is recovered into its inner value, matching parking_lot's
//! no-poisoning semantics.

// Vendored shim: API fidelity over lint cleanliness.
#![allow(clippy::all)]

/// Non-poisoning mutex over [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Non-poisoning reader-writer lock over [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 1);
        assert_eq!(m.into_inner(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}

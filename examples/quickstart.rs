//! Quickstart: match a power-law graph on a simulated DGX-A100.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use ldgm::core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm::core::verify::half_approx_certificate;
use ldgm::gpusim::Platform;
use ldgm::graph::gen::GraphGen;
use ldgm::graph::stats::stats;

fn main() {
    // 1. Generate a GAP-kron-style power-law graph with uniform [0,1]
    //    3-decimal weights (the paper's weighting scheme).
    let g = GraphGen::rmat().vertices(1 << 14).avg_degree(16).seed(42).build();
    let s = stats(&g);
    println!("graph: |V|={} |E|={} d_max={} d_avg={:.1}", s.vertices, s.edges, s.d_max, s.d_avg);

    // 2. Run LD-GPU on four simulated A100s of a DGX-A100 node.
    let cfg = LdGpuConfig::new(Platform::dgx_a100()).devices(4);
    let out = LdGpu::new(cfg).run(&g);

    // 3. Inspect the result.
    out.matching.verify(&g).expect("matching must be structurally valid");
    assert!(out.matching.is_maximal(&g), "locally dominant matching is maximal");
    assert!(
        half_approx_certificate(&g, &out.matching),
        "every edge is dominated by an adjacent matched edge (1/2-approx certificate)"
    );
    println!(
        "matched {} edges, total weight {:.3}, in {} iterations",
        out.matching.cardinality(),
        out.matching.weight(&g),
        out.iterations
    );
    println!(
        "simulated time on {} GPUs ({} batch(es)/device): {:.3} ms",
        out.devices,
        out.batches,
        out.sim_time * 1e3
    );
    let pct = out.profile.phases.percentages();
    println!(
        "breakdown: pointing {:.0}% | matching {:.0}% | allreduce {:.0}% | transfer {:.0}% | sync {:.0}%",
        pct[0], pct[1], pct[2], pct[3], pct[4]
    );
}

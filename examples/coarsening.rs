//! Multilevel graph coarsening by repeated heavy-edge matching — the
//! AMG-preconditioner / multilevel-partitioner application the paper's
//! introduction motivates (D'Ambra et al., matching-based coarsening).
//!
//! Each level computes a maximal weighted matching and contracts matched
//! pairs into coarse vertices, summing parallel edge weights; heavy edges
//! disappear first, which is exactly why *weighted* (not cardinality)
//! matching is the right coarsening primitive.
//!
//! ```bash
//! cargo run --release --example coarsening
//! ```

use ldgm::core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm::core::Matching;
use ldgm::gpusim::Platform;
use ldgm::graph::gen::GraphGen;
use ldgm::graph::{CsrGraph, GraphBuilder, VertexId};

/// Contract matched pairs: each matched pair (and each unmatched vertex)
/// becomes one coarse vertex; edges between coarse vertices accumulate the
/// fine edge weights. Returns the coarse graph and the fine→coarse map.
fn contract(g: &CsrGraph, m: &Matching) -> (CsrGraph, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut coarse_of: Vec<VertexId> = vec![VertexId::MAX; n];
    let mut next: VertexId = 0;
    for v in 0..n as VertexId {
        if coarse_of[v as usize] != VertexId::MAX {
            continue;
        }
        coarse_of[v as usize] = next;
        if let Some(u) = m.mate(v) {
            coarse_of[u as usize] = next;
        }
        next += 1;
    }
    let mut b = GraphBuilder::new(next as usize);
    let mut acc: std::collections::BTreeMap<(VertexId, VertexId), f64> =
        std::collections::BTreeMap::new();
    for (u, v, w) in g.iter_edges() {
        let (cu, cv) = (coarse_of[u as usize], coarse_of[v as usize]);
        if cu != cv {
            let key = (cu.min(cv), cu.max(cv));
            *acc.entry(key).or_insert(0.0) += w;
        }
    }
    for ((u, v), w) in acc {
        b.push_edge(u, v, w);
    }
    (b.build(), coarse_of)
}

fn main() {
    let mut g = GraphGen::geometric(0.02).vertices(20_000).seed(7).build();
    let platform = Platform::dgx_a100();
    println!("level |    |V| |     |E| | matched | coarsening ratio");
    println!("------+--------+---------+---------+-----------------");
    println!("    0 | {:>6} | {:>7} |       - |        -", g.num_vertices(), g.num_edges());
    for level in 1..=6 {
        if g.num_edges() == 0 {
            break;
        }
        let out = LdGpu::new(LdGpuConfig::new(platform.clone()).devices(2)).run(&g);
        out.matching.verify(&g).expect("valid matching");
        let matched = out.matching.cardinality();
        let (coarse, _) = contract(&g, &out.matching);
        let ratio = coarse.num_vertices() as f64 / g.num_vertices() as f64;
        println!(
            "{level:>5} | {:>6} | {:>7} | {matched:>7} | {ratio:>16.3}",
            coarse.num_vertices(),
            coarse.num_edges(),
        );
        // A maximal matching halves the vertex count in the limit; real
        // graphs land between 0.5 and 1.0 depending on matchable fraction.
        assert!((0.5 - 1e-9..=1.0).contains(&ratio));
        g = coarse;
    }
    println!("final coarse graph: |V|={} |E|={}", g.num_vertices(), g.num_edges());
}

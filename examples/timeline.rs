//! Execution timeline: render an ASCII Gantt view of an LD-GPU run — the
//! simulator's equivalent of an Nsight Systems capture. Shows dual-buffer
//! copy/compute overlap within the pointing phase and the collective
//! barriers that serialize the devices.
//!
//! ```bash
//! cargo run --release --example timeline
//! ```

use ldgm::core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm::gpusim::{EventKind, Platform};
use ldgm::graph::gen::GraphGen;

fn main() {
    let g = GraphGen::web().vertices(20_000).avg_degree(16).seed(5).build();
    // Tight memory forces more batches than stream buffers, so the
    // copy/compute pipeline and per-batch syncs are visible.
    let platform = Platform::dgx_a100().with_device_memory(1 << 20);
    let cfg = LdGpuConfig::new(platform).devices(4).with_trace();
    let out = LdGpu::new(cfg).run(&g);
    let trace = out.trace.as_ref().expect("trace requested");

    println!(
        "LD-GPU on |V|={} |E|={}: {} devices x {} batches, {} iterations, {:.3} ms simulated\n",
        g.num_vertices(),
        g.num_edges(),
        out.devices,
        out.batches,
        out.iterations,
        out.sim_time * 1e3
    );
    println!("{}", trace.render_gantt(100));

    println!("per-device busy time (ms):");
    println!("device   kernels    copies  collectives");
    for d in 0..out.devices {
        println!(
            "{d:>6}  {:>8.4}  {:>8.4}  {:>11.4}",
            (trace.busy_time(d, EventKind::Kernel) * 1e3).abs(),
            (trace.busy_time(d, EventKind::H2dCopy) * 1e3).abs(),
            (trace.busy_time(d, EventKind::Collective) * 1e3).abs(),
        );
    }
    let events = trace.events.len();
    println!("\n{events} events recorded; first five:");
    for e in trace.events.iter().take(5) {
        println!(
            "  dev{} {:>10} [{:.2}us .. {:.2}us] {}",
            e.device,
            format!("{:?}", e.kind),
            e.start * 1e6,
            e.end * 1e6,
            e.label
        );
    }
}

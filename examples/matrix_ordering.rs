//! Sparse-matrix ordering by weighted bipartite matching — the numerical
//! linear algebra application the paper cites (Duff & Koster, "On
//! algorithms for permuting large entries to the diagonal of a sparse
//! matrix", SIMAX 2001): match matrix rows to columns so that the
//! permuted matrix carries the heaviest possible entries on its diagonal,
//! a standard pre-pivoting step for sparse LU.
//!
//! ```bash
//! cargo run --release --example matrix_ordering
//! ```

use ldgm::core::blossom::blossom_mwm;
use ldgm::core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm::gpusim::Platform;
use ldgm::graph::rng::Xoshiro256;
use ldgm::graph::{GraphBuilder, VertexId};

/// A random sparse square matrix as (row, col, |value|) triples with a
/// weak diagonal — the hard case for pivoting.
fn random_matrix(n: usize, nnz_per_row: usize, seed: u64) -> Vec<(usize, usize, f64)> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut entries = Vec::new();
    for r in 0..n {
        // Weak diagonal entry.
        entries.push((r, r, 0.01 + 0.04 * rng.next_f64()));
        for _ in 0..nnz_per_row {
            let c = rng.below(n as u64) as usize;
            // Off-diagonal magnitudes up to 1.0.
            entries.push((r, c, 0.1 + 0.9 * rng.next_f64()));
        }
    }
    entries
}

fn main() {
    let n = 400;
    let entries = random_matrix(n, 6, 99);
    println!("matrix: {n}x{n}, {} stored entries", entries.len());

    // Bipartite model: rows are vertices 0..n, columns n..2n; edge weight
    // log(|a_rc|) shifted positive so that maximizing the matching weight
    // maximizes the product of matched magnitudes (Duff-Koster's MC64
    // objective).
    let shift = 8.0; // |a| >= 0.01 => ln|a| >= -4.6 => shifted > 0
    let mut b = GraphBuilder::new(2 * n);
    for &(r, c, a) in &entries {
        b.push_edge(r as VertexId, (n + c) as VertexId, a.ln() + shift);
    }
    let g = b.build();

    let diag_product_log = |perm: &[usize]| -> f64 {
        let mut lookup = std::collections::BTreeMap::new();
        for &(r, c, a) in &entries {
            lookup.insert((r, c), a);
        }
        perm.iter()
            .enumerate()
            .map(|(r, &c)| lookup.get(&(r, c)).copied().unwrap_or(f64::MIN_POSITIVE).ln())
            .sum()
    };

    // Identity permutation (no pivoting): weak diagonal.
    let identity: Vec<usize> = (0..n).collect();
    println!("log-product of |diag|, identity:   {:>9.2}", diag_product_log(&identity));

    // LD-GPU approximate matching.
    let out = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(2)).run(&g);
    let mut perm: Vec<usize> = (0..n).collect();
    let mut matched = 0;
    for (r, slot) in perm.iter_mut().enumerate() {
        if let Some(c) = out.matching.mate(r as VertexId) {
            *slot = c as usize - n;
            matched += 1;
        }
    }
    println!(
        "log-product of |diag|, LD-GPU:     {:>9.2}  ({matched}/{n} rows matched, {} iterations)",
        diag_product_log(&perm),
        out.iterations
    );

    // Exact optimum for reference.
    let exact = blossom_mwm(&g, 1_000_000.0);
    let mut perm_x: Vec<usize> = (0..n).collect();
    for (r, slot) in perm_x.iter_mut().enumerate() {
        if let Some(c) = exact.mate(r as VertexId) {
            *slot = c as usize - n;
        }
    }
    println!("log-product of |diag|, optimal:    {:>9.2}", diag_product_log(&perm_x));

    let gain = diag_product_log(&perm) - diag_product_log(&identity);
    assert!(gain > 0.0, "matching-based pivoting must strengthen the diagonal");
    println!(
        "\ndiagonal product strengthened by a factor of e^{gain:.0} (~10^{:.0})",
        gain / std::f64::consts::LN_10
    );
}

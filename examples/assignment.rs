//! Bipartite assignment (the residents→hospitals application from the
//! paper's introduction): build a preference graph, solve it with the
//! fast ½-approximate LD-GPU matcher, and compare against the exact
//! Blossom optimum.
//!
//! ```bash
//! cargo run --release --example assignment
//! ```

use ldgm::core::blossom::blossom_mwm;
use ldgm::core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm::core::suitor_par::suitor_par;
use ldgm::core::verify::pct_diff_from_optimal;
use ldgm::gpusim::Platform;
use ldgm::graph::gen::{bipartite, is_bipartition};

fn main() {
    // 300 residents, 360 hospital slots, each resident ranks 6 programs
    // with a compatibility score in (0, 1].
    let (residents, hospitals, choices) = (300usize, 360usize, 6usize);
    let g = bipartite(residents, hospitals, choices, 2024);
    assert!(is_bipartition(&g, residents));
    println!(
        "preference graph: {residents} residents x {hospitals} hospitals, {} compatible pairs",
        g.num_edges()
    );

    // Exact optimum (Blossom handles the bipartite case as a special case).
    let exact = blossom_mwm(&g, 1000.0);
    let opt = exact.weight(&g);

    // Fast approximations.
    let ld = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(2)).run(&g);
    let ld_w = ld.matching.weight(&g);
    let sp = suitor_par(&g);
    let sp_w = sp.weight(&g);

    println!("\nmethod        assigned  total score  gap vs optimal");
    println!("------------  --------  -----------  --------------");
    println!("Blossom       {:>8}  {opt:>11.3}  {:>13.2}%", exact.cardinality(), 0.0);
    println!(
        "LD-GPU        {:>8}  {ld_w:>11.3}  {:>13.2}%",
        ld.matching.cardinality(),
        pct_diff_from_optimal(ld_w, opt)
    );
    println!(
        "Suitor (par)  {:>8}  {sp_w:>11.3}  {:>13.2}%",
        sp.cardinality(),
        pct_diff_from_optimal(sp_w, opt)
    );

    // Show a few concrete assignments.
    println!("\nsample assignments (resident -> hospital, score):");
    for (u, v) in ld.matching.edges().take(5) {
        let (r, h) = if (u as usize) < residents { (u, v) } else { (v, u) };
        println!(
            "  resident {r:>3} -> hospital {:>3}  ({:.3})",
            h - residents as u32,
            g.edge_weight(u, v).unwrap()
        );
    }
    assert!(ld_w >= 0.5 * opt, "1/2-approximation bound must hold");
}

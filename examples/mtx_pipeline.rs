//! Matrix Market pipeline: persist a graph, reload it, and compare every
//! matching algorithm in the crate on the same instance — the workflow a
//! SuiteSparse user would run.
//!
//! ```bash
//! cargo run --release --example mtx_pipeline
//! ```

use ldgm::core::{
    auction::auction,
    greedy::greedy,
    ld_gpu::{LdGpu, LdGpuConfig},
    ld_seq::ld_seq,
    local_max::local_max,
    suitor::suitor,
    suitor_par::suitor_par,
};
use ldgm::gpusim::Platform;
use ldgm::graph::gen::GraphGen;
use ldgm::graph::io::{read_mtx_file, write_mtx_file};

fn main() {
    let g = GraphGen::similarity(8).vertices(1500).seed(3).build();
    let path = std::env::temp_dir().join("ldgm_example.mtx");
    write_mtx_file(&g, &path).expect("write MatrixMarket file");
    println!("wrote {} ({} vertices, {} edges)", path.display(), g.num_vertices(), g.num_edges());

    let g2 = read_mtx_file(&path, 0).expect("read MatrixMarket file");
    assert_eq!(g, g2, "round trip must be lossless");

    println!("\nalgorithm      cardinality  weight");
    println!("-------------  -----------  -------");
    let report = |name: &str, m: &ldgm::core::Matching| {
        m.verify(&g2).expect("valid");
        println!("{name:<13}  {:>11}  {:>7.2}", m.cardinality(), m.weight(&g2));
    };
    report("LD-SEQ", &ld_seq(&g2));
    report("LocalMax", &local_max(&g2));
    report("Greedy", &greedy(&g2));
    report("Suitor", &suitor(&g2));
    report("Suitor (par)", &suitor_par(&g2));
    report("Auction", &auction(&g2, 9));
    let ld = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(4)).run(&g2);
    report("LD-GPU x4", &ld.matching);

    // The pointer family is bit-identical under the shared tie-break.
    assert_eq!(ld.matching.mate_array(), ld_seq(&g2).mate_array());
    std::fs::remove_file(&path).ok();
    println!("\npointer family (LD-SEQ / LD-GPU) produced identical matchings, as designed");
}

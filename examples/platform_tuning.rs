//! Device/batch configuration tuning: sweep an LD-GPU configuration space
//! on a simulated platform — the §IV-B methodology ("we picked the best
//! results for every configuration by considering a range of batches") —
//! and report the winner with its component breakdown.
//!
//! ```bash
//! cargo run --release --example platform_tuning
//! ```

use ldgm::core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm::gpusim::Platform;
use ldgm::graph::gen::GraphGen;

fn main() {
    let g = GraphGen::web().vertices(60_000).avg_degree(24).seed(11).build();
    // Shrink device memory so the configuration space is interesting:
    // small device counts need batching.
    let platform = Platform::dgx_a100().with_device_memory(8 << 20).with_overheads_scaled(1024.0);

    println!(
        "tuning LD-GPU over devices x batches (graph: |V|={} |E|={})",
        g.num_vertices(),
        g.num_edges()
    );
    println!("\ndevices  batches  sim time     note");
    println!("-------  -------  -----------  ----");
    let mut best: Option<(usize, usize, f64)> = None;
    for nd in [1usize, 2, 4, 8] {
        for nb in [1usize, 2, 3, 5, 10] {
            let cfg = LdGpuConfig::new(platform.clone())
                .devices(nd)
                .batches(nb)
                .without_iteration_profile();
            match LdGpu::new(cfg).try_run(&g) {
                Ok(out) => {
                    let better = best.is_none_or(|(_, _, t)| out.sim_time < t);
                    if better {
                        best = Some((nd, nb, out.sim_time));
                    }
                    println!(
                        "{nd:>7}  {nb:>7}  {:>9.1}us  {}",
                        out.sim_time * 1e6,
                        if better { "<- best so far" } else { "" }
                    );
                }
                Err(e) => println!("{nd:>7}  {nb:>7}  {:>11}  ({e})", "OOM"),
            }
        }
    }
    let (nd, nb, _) = best.expect("at least one feasible configuration");
    let out = LdGpu::new(LdGpuConfig::new(platform).devices(nd).batches(nb)).run(&g);
    let pct = out.profile.phases.percentages();
    println!("\nwinner: {nd} device(s), {nb} batch(es) -> {:.1}us simulated", out.sim_time * 1e6);
    println!(
        "breakdown: pointing {:.0}% | matching {:.0}% | allreduce {:.0}% | transfer {:.0}% | sync {:.0}%",
        pct[0], pct[1], pct[2], pct[3], pct[4]
    );
    println!(
        "matched weight {:.1} over {} iterations; first iteration touched {:.0}% of edges",
        out.matching.weight(&g),
        out.iterations,
        out.profile.iterations.first().map_or(0.0, |r| r.pct_edges)
    );
}
